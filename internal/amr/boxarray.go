// Package amr implements the block-structured adaptive mesh refinement
// machinery the paper's AMReX/Castro substrate provides: box arrays,
// distribution mappings (domain decomposition over MPI tasks), error
// tagging, Berger–Rigoutsos grid generation, distributed field containers
// (MultiFab), ghost-cell exchange and coarse-fine interpolation.
//
// The package is deliberately close to AMReX's vocabulary — BoxArray,
// DistributionMapping, MultiFab, FillPatch — because the paper's measured
// quantity (bytes per timestep, per level, per task — its Eq. 2) is a
// direct function of these objects' evolution.
package amr

import (
	"fmt"
	"sort"
	"sync"

	"amrproxyio/internal/grid"
)

// BoxArray is the set of boxes that tile a level's valid region.
//
// A BoxArray built through NewBoxArray (or any constructor that goes
// through it) carries a lazily-built spatial index and content fingerprint
// shared by all copies of the value. Boxes must not be mutated after the
// first Index/Fingerprint call; AMR code never does — regrids build new
// arrays — which is exactly the AMReX immutability contract.
type BoxArray struct {
	Boxes []grid.Box
	h     *baHolder
}

// baHolder caches the derived spatial metadata of one immutable box list.
type baHolder struct {
	idxOnce sync.Once
	idx     *grid.BoxIndex
	fpOnce  sync.Once
	fp      uint64
}

// NewBoxArray wraps a box list.
func NewBoxArray(boxes []grid.Box) BoxArray {
	return BoxArray{Boxes: boxes, h: &baHolder{}}
}

// Index returns the spatial index over the array's boxes, building it on
// first use. Zero-value BoxArrays (constructed without NewBoxArray, e.g.
// by a checkpoint loader filling Boxes directly) get a fresh uncached
// index per call, which is correct but slower — hot paths always hold
// arrays with a cache slot.
func (ba BoxArray) Index() *grid.BoxIndex {
	if ba.h == nil {
		return grid.NewBoxIndex(ba.Boxes)
	}
	ba.h.idxOnce.Do(func() { ba.h.idx = grid.NewBoxIndex(ba.Boxes) })
	return ba.h.idx
}

// Fingerprint returns the content hash identifying this exact box list.
// Communication plans are keyed on fingerprints, so plans cached for one
// grid generation can never be replayed against another (regrids produce
// different boxes, hence different fingerprints).
func (ba BoxArray) Fingerprint() uint64 {
	if ba.h == nil {
		return grid.FingerprintBoxes(ba.Boxes)
	}
	ba.h.fpOnce.Do(func() { ba.h.fp = grid.FingerprintBoxes(ba.Boxes) })
	return ba.h.fp
}

// SingleBoxArray covers dom with one box, then splits it to respect
// maxGridSize with blockingFactor alignment — exactly how AMReX builds the
// level-0 grid set from amr.n_cell and amr.max_grid_size.
func SingleBoxArray(dom grid.Box, maxGridSize, blockingFactor int) BoxArray {
	return NewBoxArray(dom.SplitMax(maxGridSize, blockingFactor))
}

// Len returns the number of boxes.
func (ba BoxArray) Len() int { return len(ba.Boxes) }

// NumPts is the total cell count over all boxes.
func (ba BoxArray) NumPts() int64 {
	var n int64
	for _, b := range ba.Boxes {
		n += b.NumPts()
	}
	return n
}

// MinimalBox is the bounding box of the array.
func (ba BoxArray) MinimalBox() grid.Box {
	if len(ba.Boxes) == 0 {
		return grid.Empty()
	}
	out := ba.Boxes[0]
	for _, b := range ba.Boxes[1:] {
		out.Lo = out.Lo.Min(b.Lo)
		out.Hi = out.Hi.Max(b.Hi)
	}
	return out
}

// Contains reports whether cell p is covered by any box.
func (ba BoxArray) Contains(p grid.IntVect) bool {
	return ba.Index().Contains(p)
}

// Owner returns the lowest index of a box covering cell p, or -1.
func (ba BoxArray) Owner(p grid.IntVect) int {
	return ba.Index().Owner(p)
}

// ContainsBox reports whether box o is entirely covered by the union of
// the array's boxes. Only boxes actually intersecting o are subtracted.
func (ba BoxArray) ContainsBox(o grid.Box) bool {
	if o.IsEmpty() {
		return true
	}
	remaining := []grid.Box{o}
	for _, i := range ba.Index().Intersecting(o, nil) {
		var next []grid.Box
		for _, r := range remaining {
			next = append(next, r.Difference(ba.Boxes[i])...)
		}
		remaining = next
		if len(remaining) == 0 {
			return true
		}
	}
	return len(remaining) == 0
}

// Intersections returns the indices and overlap boxes of all array boxes
// intersecting b, in ascending index order.
func (ba BoxArray) Intersections(b grid.Box) []Intersection {
	var out []Intersection
	for _, i := range ba.Index().Intersecting(b, nil) {
		out = append(out, Intersection{Index: i, Box: ba.Boxes[i].Intersect(b)})
	}
	return out
}

// Intersection pairs a box index with the overlap region.
type Intersection struct {
	Index int
	Box   grid.Box
}

// Refine maps every box to the finer index space.
func (ba BoxArray) Refine(ratio int) BoxArray {
	out := make([]grid.Box, len(ba.Boxes))
	for i, b := range ba.Boxes {
		out[i] = b.Refine(ratio)
	}
	return NewBoxArray(out)
}

// Coarsen maps every box to the coarser index space.
func (ba BoxArray) Coarsen(ratio int) BoxArray {
	out := make([]grid.Box, len(ba.Boxes))
	for i, b := range ba.Boxes {
		out[i] = b.Coarsen(ratio)
	}
	return NewBoxArray(out)
}

// Complement returns the parts of region not covered by the array.
func (ba BoxArray) Complement(region grid.Box) []grid.Box {
	if region.IsEmpty() {
		return nil
	}
	remaining := []grid.Box{region}
	for _, i := range ba.Index().Intersecting(region, nil) {
		var next []grid.Box
		for _, r := range remaining {
			next = append(next, r.Difference(ba.Boxes[i])...)
		}
		remaining = next
		if len(remaining) == 0 {
			break
		}
	}
	return remaining
}

// IsDisjoint verifies no two boxes overlap (an AMReX BoxArray invariant
// for valid regions). With the spatial index this is O(N) queries rather
// than the former O(N^2) pair scan.
func (ba BoxArray) IsDisjoint() bool {
	idx := ba.Index()
	var scratch []int
	for i, b := range ba.Boxes {
		if b.IsEmpty() {
			continue
		}
		scratch = idx.Intersecting(b, scratch[:0])
		for _, j := range scratch {
			if j != i {
				return false
			}
		}
	}
	return true
}

func (ba BoxArray) String() string {
	return fmt.Sprintf("BoxArray{%d boxes, %d cells}", ba.Len(), ba.NumPts())
}

// DistributionMapping assigns each box of a BoxArray to an owning rank.
type DistributionMapping struct {
	Owner []int
}

// DistStrategy selects the decomposition algorithm.
type DistStrategy int

const (
	// DistRoundRobin assigns box i to rank i % nprocs (AMReX's simplest).
	DistRoundRobin DistStrategy = iota
	// DistKnapsack balances total cells per rank greedily (largest box to
	// least-loaded rank), AMReX's default-ish heuristic.
	DistKnapsack
	// DistSFC orders boxes along a Morton space-filling curve and chops
	// the curve into nprocs contiguous chunks of roughly equal cells.
	DistSFC
)

func (s DistStrategy) String() string {
	switch s {
	case DistRoundRobin:
		return "roundrobin"
	case DistKnapsack:
		return "knapsack"
	case DistSFC:
		return "sfc"
	default:
		return fmt.Sprintf("DistStrategy(%d)", int(s))
	}
}

// DistStrategies lists every decomposition algorithm, in declaration
// order — the sweep set for distribution-mapping experiments.
func DistStrategies() []DistStrategy {
	return []DistStrategy{DistRoundRobin, DistKnapsack, DistSFC}
}

// ParseDistStrategy resolves a strategy name (the String() forms:
// "roundrobin", "knapsack", "sfc"). Unknown names are an error, mirroring
// the campaign's unknown-engine handling.
func ParseDistStrategy(name string) (DistStrategy, error) {
	for _, s := range DistStrategies() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("amr: unknown distribution strategy %q", name)
}

// Distribute builds a DistributionMapping for ba over nprocs ranks. An
// unrecognized strategy is an error (unknown experiment configurations
// must not silently fall back to a default mapping).
func Distribute(ba BoxArray, nprocs int, strategy DistStrategy) (DistributionMapping, error) {
	n := ba.Len()
	owner := make([]int, n)
	if nprocs < 1 {
		nprocs = 1
	}
	switch strategy {
	case DistRoundRobin:
		for i := range owner {
			owner[i] = i % nprocs
		}
	case DistKnapsack:
		type item struct {
			idx int
			pts int64
		}
		items := make([]item, n)
		for i, b := range ba.Boxes {
			items[i] = item{idx: i, pts: b.NumPts()}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].pts != items[b].pts {
				return items[a].pts > items[b].pts
			}
			return items[a].idx < items[b].idx // deterministic tie-break
		})
		load := make([]int64, nprocs)
		count := make([]int, nprocs)
		for _, it := range items {
			// Least-loaded rank; ties go to the rank with fewer boxes
			// (then the lower index), so degenerate zero-cell boxes still
			// spread instead of piling onto one rank and every rank owns
			// a box whenever there are enough boxes.
			best := 0
			for r := 1; r < nprocs; r++ {
				if load[r] < load[best] ||
					(load[r] == load[best] && count[r] < count[best]) {
					best = r
				}
			}
			owner[it.idx] = best
			load[best] += it.pts
			count[best]++
		}
	case DistSFC:
		type item struct {
			idx  int
			code uint64
			pts  int64
		}
		items := make([]item, n)
		var total int64
		for i, b := range ba.Boxes {
			c := b.Lo.Add(b.Hi) // 2*center; monotone in center
			items[i] = item{idx: i, code: grid.Morton(c.X, c.Y), pts: b.NumPts()}
			total += b.NumPts()
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].code != items[b].code {
				return items[a].code < items[b].code
			}
			return items[a].idx < items[b].idx
		})
		// Zero-cell degeneracy: with total == 0 every load cut fires at
		// once (perRank is 0), so weight boxes equally instead and the
		// curve still chops into balanced contiguous chunks.
		weight := func(pts int64) int64 { return pts }
		if total == 0 {
			weight = func(int64) int64 { return 1 }
			total = int64(n)
		}
		perRank := float64(total) / float64(nprocs)
		var acc int64
		rank, placed := 0, 0
		for k, it := range items {
			// Advance the cut when the accumulated load passes this
			// rank's share — but never before the rank owns a box, and
			// always when the remaining boxes are only just enough to
			// give every remaining rank one (so n >= nprocs implies every
			// rank ends up with at least one box).
			if rank < nprocs-1 && placed > 0 {
				if n-k <= nprocs-1-rank || float64(acc) >= perRank*float64(rank+1) {
					rank++
					placed = 0
				}
			}
			owner[it.idx] = rank
			placed++
			acc += weight(it.pts)
		}
	default:
		return DistributionMapping{}, fmt.Errorf("amr: unknown distribution strategy %d", strategy)
	}
	return DistributionMapping{Owner: owner}, nil
}

// MustDistribute is Distribute for callers whose strategy is statically
// known-valid (tests, benchmarks, examples); it panics on error.
func MustDistribute(ba BoxArray, nprocs int, strategy DistStrategy) DistributionMapping {
	dm, err := Distribute(ba, nprocs, strategy)
	if err != nil {
		panic(err)
	}
	return dm
}

// RankBoxes returns the box indices owned by rank.
func (dm DistributionMapping) RankBoxes(rank int) []int {
	var out []int
	for i, o := range dm.Owner {
		if o == rank {
			out = append(out, i)
		}
	}
	return out
}

// LoadPerRank returns total cells owned by each of nprocs ranks.
func (dm DistributionMapping) LoadPerRank(ba BoxArray, nprocs int) []int64 {
	load := make([]int64, nprocs)
	for i, o := range dm.Owner {
		load[o] += ba.Boxes[i].NumPts()
	}
	return load
}
