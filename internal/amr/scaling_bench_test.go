package amr

import (
	"fmt"
	"testing"

	"amrproxyio/internal/grid"
)

// Scaling benchmarks for the BoxIndex/plan-cache subsystem. Each pair of
// benchmarks (indexed vs naive) runs the same work at 64, 256 and 1024
// boxes so the O(N^2) -> O(N) change in scaling class is visible in the
// bench trajectory, and reports boxes/sec for cross-size comparison:
//
//	go test ./internal/amr -bench 'FillBoundary|ExchangePlan|FillPatch' -benchtime 1x
func scalingSizes() []int { return []int{64, 256, 1024} }

// scalingBA tiles a square domain into exactly nboxes 16x16 boxes.
func scalingBA(nboxes int) BoxArray {
	side := 1
	for side*side < nboxes {
		side *= 2
	}
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(side*16-1, side*16-1))
	return SingleBoxArray(dom, 16, 16)
}

func scalingMF(nboxes, ncomp, nghost int) *MultiFab {
	ba := scalingBA(nboxes)
	return NewMultiFab(ba, MustDistribute(ba, 8, DistKnapsack), ncomp, nghost)
}

func reportBoxesPerSec(b *testing.B, nboxes int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(nboxes)*float64(b.N)/s, "boxes/sec")
	}
}

func BenchmarkFillBoundary(b *testing.B) {
	for _, n := range scalingSizes() {
		b.Run(fmt.Sprintf("boxes=%d", n), func(b *testing.B) {
			mf := scalingMF(n, 4, 2)
			mf.FillBoundary() // warm the plan cache: steady-state replay
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mf.FillBoundary()
			}
			reportBoxesPerSec(b, n)
		})
	}
}

func BenchmarkFillBoundaryNaive(b *testing.B) {
	for _, n := range scalingSizes() {
		b.Run(fmt.Sprintf("boxes=%d", n), func(b *testing.B) {
			mf := scalingMF(n, 4, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				naiveFillBoundary(mf)
			}
			reportBoxesPerSec(b, n)
		})
	}
}

// BenchmarkExchangePlan measures uncached plan construction — the cost a
// regrid pays once per new grid generation.
func BenchmarkExchangePlan(b *testing.B) {
	for _, n := range scalingSizes() {
		b.Run(fmt.Sprintf("boxes=%d", n), func(b *testing.B) {
			ba := scalingBA(n)
			ba.Index() // isolate plan construction from index build
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				computeFillBoundaryPlan(ba, 2)
			}
			reportBoxesPerSec(b, n)
		})
	}
}

func BenchmarkExchangePlanNaive(b *testing.B) {
	for _, n := range scalingSizes() {
		b.Run(fmt.Sprintf("boxes=%d", n), func(b *testing.B) {
			mf := scalingMF(n, 4, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				naiveExchangePairs(mf)
			}
			reportBoxesPerSec(b, n)
		})
	}
}

// BenchmarkFillPatch measures the coarse-region plan construction (the
// part of FillPatch that was O(N^2): data box minus every valid box).
func BenchmarkFillPatch(b *testing.B) {
	for _, n := range scalingSizes() {
		b.Run(fmt.Sprintf("boxes=%d", n), func(b *testing.B) {
			ba := scalingBA(n)
			dom := ba.MinimalBox()
			ba.Index()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				computeFillPatchCoarsePlan(ba, 2, dom)
			}
			reportBoxesPerSec(b, n)
		})
	}
}

func BenchmarkFillPatchNaive(b *testing.B) {
	for _, n := range scalingSizes() {
		b.Run(fmt.Sprintf("boxes=%d", n), func(b *testing.B) {
			ba := scalingBA(n)
			dom := ba.MinimalBox()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, db := range ba.Boxes {
					needed := []grid.Box{db.Grow(2).Intersect(dom)}
					for _, vb := range ba.Boxes {
						var next []grid.Box
						for _, r := range needed {
							next = append(next, r.Difference(vb)...)
						}
						needed = next
						if len(needed) == 0 {
							break
						}
					}
				}
			}
			reportBoxesPerSec(b, n)
		})
	}
}

// TestScalingSpeedup is the acceptance gate in test form: at 1024 boxes
// the indexed paths must beat the naive ones by >= 5x. Run with the
// normal test suite (it times a handful of iterations, not full bench
// statistics) so CI catches a scaling regression without -bench.
func TestScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// A 1-component, 1-ghost MultiFab (the tagging shape): the regime
	// where neighbor search, not byte movement, is the cost — the copies
	// themselves are identical on both sides of the comparison.
	const n = 1024
	mf := scalingMF(n, 1, 1)
	mf.FillBoundary() // warm plan + index

	timeIt := func(fn func()) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return res.T.Seconds() / float64(res.N)
	}
	fast := timeIt(func() { mf.FillBoundary() })
	slow := timeIt(func() { naiveFillBoundary(mf) })
	if slow < 5*fast {
		t.Errorf("FillBoundary speedup %.1fx < 5x (fast %v, slow %v)", slow/fast, fast, slow)
	}
	// Same nghost=1 plan on both sides, matching mf's shape.
	ba := mf.BA
	fastPlan := timeIt(func() { computeFillBoundaryPlan(ba, 1) })
	slowPlan := timeIt(func() { naiveExchangePairs(mf) })
	if slowPlan < 5*fastPlan {
		t.Errorf("exchange-plan speedup %.1fx < 5x (fast %v, slow %v)", slowPlan/fastPlan, fastPlan, slowPlan)
	}
}
