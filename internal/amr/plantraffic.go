package amr

import "sort"

// Per-rank-pair traffic volumes derived from the cached communication
// plans. A copy plan records which (source box, destination box, region)
// copies a ghost exchange performs; composing it with a
// DistributionMapping attributes each region's bytes to the (owner(src),
// owner(dst)) rank pair — exactly the view a network contention model
// needs. The result is cached alongside the plans themselves, keyed by
// the BoxArray fingerprint plus a fingerprint of the ownership vector, so
// a regrid or a re-distribution invalidates it automatically while
// steady-state timesteps replay it for free. This is what lets mesh
// exchange traffic and the checkpoint/plot bursts in the iosim ledger
// share one topology-aware contention model (iosim.Topology.ExchangeTime).

// PairTraffic is the byte volume one rank sends another during a
// bulk-synchronous exchange. Src == Dst entries are local copies (no
// wire traffic on a real machine, but reported so callers can price
// intra-node bandwidth if they choose).
type PairTraffic struct {
	Src   int
	Dst   int
	Bytes int64
}

// ownersFingerprint hashes a DistributionMapping's ownership vector
// (FNV-1a over the owner sequence) for use in plan-cache keys.
func ownersFingerprint(owner []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, o := range owner {
		v := uint64(o)
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	return h
}

// FillBoundaryTraffic returns the per-rank-pair byte volumes of one
// same-level ghost exchange on (ba, dm) with the given ghost width and
// component count: for every cached (src, dst, region) copy, region cells
// x ncomp x 8 bytes attributed to (dm.Owner[src], dm.Owner[dst]). The
// slice is sorted by (Src, Dst), deterministic, and cached — callers must
// not mutate it.
func FillBoundaryTraffic(ba BoxArray, dm DistributionMapping, nghost, ncomp int) []PairTraffic {
	key := planKey{
		op:  opPairTraffic,
		aFP: ba.Fingerprint(),
		bFP: ownersFingerprint(dm.Owner),
		p1:  uint64(nghost),
		p2:  uint64(ncomp),
	}
	return lookupPlan(key, func() interface{} {
		plan := fillBoundaryPlan(ba, nghost)
		vol := map[[2]int]int64{}
		for _, p := range plan.pairs {
			sr, dr := dm.Owner[p.srcIdx], dm.Owner[p.dstIdx]
			vol[[2]int{sr, dr}] += p.region.NumPts() * int64(ncomp) * 8
		}
		out := make([]PairTraffic, 0, len(vol))
		for k, b := range vol {
			out = append(out, PairTraffic{Src: k[0], Dst: k[1], Bytes: b})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Src != out[j].Src {
				return out[i].Src < out[j].Src
			}
			return out[i].Dst < out[j].Dst
		})
		return out
	}).([]PairTraffic)
}

// TotalTraffic sums a traffic set, optionally excluding local (Src == Dst)
// copies.
func TotalTraffic(pairs []PairTraffic, includeLocal bool) int64 {
	var n int64
	for _, p := range pairs {
		if !includeLocal && p.Src == p.Dst {
			continue
		}
		n += p.Bytes
	}
	return n
}
