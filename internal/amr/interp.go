package amr

import (
	"math"

	"amrproxyio/internal/grid"
)

// Coarse-fine data motion: prolongation (interpolation to a finer level)
// and restriction (averaging down to a coarser level). Both operate on
// cell-centered data with the AMReX index convention: fine cell (i,j)
// coarsens to (floor(i/r), floor(j/r)).

// InterpKind selects the prolongation stencil.
type InterpKind int

const (
	// InterpPiecewiseConstant injects the coarse value into every covered
	// fine cell. Exactly conservative.
	InterpPiecewiseConstant InterpKind = iota
	// InterpCellConsLinear adds minmod-limited central slopes; it remains
	// conservative for even ratios because fine-cell offsets are symmetric
	// about the coarse center. This is AMReX's default for state data.
	InterpCellConsLinear
)

// coarseLookup is the view of coarse data an interpolator needs. It
// returns the value of comp at coarse cell (i,j), clamping to the nearest
// available cell so lookups just outside the coarse valid union still work
// (e.g. against the physical boundary, where outflow BCs make the clamped
// value correct).
type coarseLookup func(i, j, comp int) float64

// interpCell computes one fine-cell value from the coarse field.
func interpCell(kind InterpKind, look coarseLookup, fi, fj, comp, ratio int) float64 {
	ci, cj := floorDiv(fi, ratio), floorDiv(fj, ratio)
	v := look(ci, cj, comp)
	if kind == InterpPiecewiseConstant {
		return v
	}
	// Limited central slopes in each direction.
	sx := minmod(look(ci+1, cj, comp)-v, v-look(ci-1, cj, comp))
	sy := minmod(look(ci, cj+1, comp)-v, v-look(ci, cj-1, comp))
	// Offset of the fine cell center from the coarse cell center, in
	// coarse-cell units: (local + 0.5)/ratio - 0.5.
	ox := (float64(fi-ci*ratio)+0.5)/float64(ratio) - 0.5
	oy := (float64(fj-cj*ratio)+0.5)/float64(ratio) - 0.5
	return v + sx*ox + sy*oy
}

func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// InterpRegion fills region (in fine index space) of the fine FAB from the
// coarse MultiFab. The coarse MultiFab should have its ghost cells filled
// (FillBoundary + physical BCs) so slope stencils are valid near box
// edges.
func InterpRegion(fine *FAB, crse *MultiFab, region grid.Box, ratio int, kind InterpKind) {
	look := makeClampedLookup(crse)
	for c := 0; c < fine.NComp; c++ {
		for j := region.Lo.Y; j <= region.Hi.Y; j++ {
			for i := region.Lo.X; i <= region.Hi.X; i++ {
				fine.Set(i, j, c, interpCell(kind, look, i, j, c, ratio))
			}
		}
	}
}

// makeClampedLookup builds a coarseLookup over the MultiFab's valid+ghost
// data, preferring valid data, then ghost data, then clamping to the
// nearest covered cell. The valid and ghost probes go through the spatial
// indexes (both cached on the MultiFab), so a lookup is O(1); only the
// rare clamp fallback — a point outside every data box, i.e. beyond the
// physical boundary's ghost ring — scans the box list.
func makeClampedLookup(mf *MultiFab) coarseLookup {
	validIdx := mf.BA.Index()
	dataIdx := mf.dataBoxIndex()
	return func(i, j, comp int) float64 {
		p := grid.IntVect{X: i, Y: j}
		// Prefer a FAB whose valid box holds p.
		if fi := validIdx.Owner(p); fi >= 0 {
			return mf.FABs[fi].At(i, j, comp)
		}
		// Then ghost data.
		if fi := dataIdx.Owner(p); fi >= 0 {
			return mf.FABs[fi].At(i, j, comp)
		}
		// Clamp to the nearest valid cell of the nearest box.
		best := math.MaxInt64
		var bi, bj int
		var bf *FAB
		for _, f := range mf.FABs {
			ci := clamp(i, f.ValidBox.Lo.X, f.ValidBox.Hi.X)
			cj := clamp(j, f.ValidBox.Lo.Y, f.ValidBox.Hi.Y)
			d := (ci-i)*(ci-i) + (cj-j)*(cj-j)
			if d < best {
				best, bi, bj, bf = d, ci, cj, f
			}
		}
		if bf == nil {
			return 0
		}
		return bf.At(bi, bj, comp)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AverageDown restricts fine data onto the overlapping region of the
// coarse MultiFab: each covered coarse cell becomes the mean of its
// ratio x ratio fine children. This keeps coarse data consistent under
// refined regions, as Castro does after each step.
func AverageDown(crse, fine *MultiFab, ratio int) {
	inv := 1.0 / float64(ratio*ratio)
	plan := averageDownPlan(crse.BA, fine.BA, ratio)
	crse.ForEachFAB(func(ci int, cf *FAB) {
		for _, p := range plan.byDst[ci] {
			ff := fine.FABs[p.srcIdx]
			overlap := p.region
			for c := 0; c < crse.NComp; c++ {
				for j := overlap.Lo.Y; j <= overlap.Hi.Y; j++ {
					for i := overlap.Lo.X; i <= overlap.Hi.X; i++ {
						var s float64
						for dj := 0; dj < ratio; dj++ {
							for di := 0; di < ratio; di++ {
								s += ff.At(i*ratio+di, j*ratio+dj, c)
							}
						}
						cf.Set(i, j, c, s*inv)
					}
				}
			}
		}
	})
}

// FillOutflowBC fills ghost cells that lie outside the physical domain
// with the nearest interior value (zero-gradient / outflow), matching the
// paper's Listing 2 boundary flags (castro.lo_bc = 2 2, hi_bc = 2 2).
func FillOutflowBC(mf *MultiFab, domain grid.Box) {
	mf.ForEachFAB(func(_ int, f *FAB) {
		if domain.ContainsBox(f.DataBox) {
			return
		}
		for c := 0; c < f.NComp; c++ {
			for j := f.DataBox.Lo.Y; j <= f.DataBox.Hi.Y; j++ {
				for i := f.DataBox.Lo.X; i <= f.DataBox.Hi.X; i++ {
					if domain.Contains(grid.IntVect{X: i, Y: j}) {
						continue
					}
					si := clamp(i, domain.Lo.X, domain.Hi.X)
					sj := clamp(j, domain.Lo.Y, domain.Hi.Y)
					// Clamp also into this FAB's data box so the source is
					// locally available (valid for boxes touching the wall).
					si = clamp(si, f.DataBox.Lo.X, f.DataBox.Hi.X)
					sj = clamp(sj, f.DataBox.Lo.Y, f.DataBox.Hi.Y)
					f.Set(i, j, c, f.At(si, sj, c))
				}
			}
		}
	})
}

// FillPatch fills the full data box (valid + ghost) of every FAB in fine:
// first from same-level valid data, then from coarse interpolation where
// no same-level data exists, and finally applies outflow physical BCs at
// the domain edge. crse may be nil for level 0 (no interpolation source).
// The coarse-region decomposition (data box minus every same-level valid
// box) is plan-cached per grid generation instead of being recomputed by
// an all-boxes subtraction on every call.
func FillPatch(fine *MultiFab, crse *MultiFab, fineDomain grid.Box, ratio int, kind InterpKind) {
	// Same-level exchange covers the interior ghost regions.
	fine.FillBoundary()
	if crse != nil {
		plan := fillPatchCoarsePlan(fine.BA, fine.NGhost, fineDomain)
		fine.ForEachFAB(func(di int, df *FAB) {
			for _, r := range plan.byDst[di] {
				InterpRegion(df, crse, r, ratio, kind)
			}
		})
	}
	FillOutflowBC(fine, fineDomain)
}
