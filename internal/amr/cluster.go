package amr

import (
	"sort"

	"amrproxyio/internal/grid"
)

// This file implements grid generation from tagged cells: the
// Berger–Rigoutsos point-clustering algorithm AMReX uses, plus the
// blocking-factor / max-grid-size post-processing that turns raw clusters
// into a legal BoxArray for the next finer level.

// TagSet is a deduplicated set of tagged cells in a level's index space.
type TagSet struct {
	cells map[grid.IntVect]struct{}
}

// NewTagSet returns an empty tag set.
func NewTagSet() *TagSet {
	return &TagSet{cells: map[grid.IntVect]struct{}{}}
}

// Add tags a cell.
func (t *TagSet) Add(p grid.IntVect) { t.cells[p] = struct{}{} }

// Len returns the number of tagged cells.
func (t *TagSet) Len() int { return len(t.cells) }

// Points returns the tags in deterministic (sorted) order.
func (t *TagSet) Points() []grid.IntVect {
	out := make([]grid.IntVect, 0, len(t.cells))
	for p := range t.cells {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// Buffer expands every tag by n cells in each direction (the AMReX
// n_error_buf safety margin), clipped to domain.
func (t *TagSet) Buffer(n int, domain grid.Box) *TagSet {
	if n <= 0 {
		return t
	}
	out := NewTagSet()
	for p := range t.cells {
		for dj := -n; dj <= n; dj++ {
			for di := -n; di <= n; di++ {
				q := grid.IntVect{X: p.X + di, Y: p.Y + dj}
				if domain.Contains(q) {
					out.Add(q)
				}
			}
		}
	}
	return out
}

// Coarsen maps tags to a coarser index space (deduplicating).
func (t *TagSet) Coarsen(ratio int) *TagSet {
	if ratio <= 1 {
		return t
	}
	out := NewTagSet()
	for p := range t.cells {
		out.Add(p.Coarsen(ratio))
	}
	return out
}

// boundingBox returns the minimal box containing all points (which must be
// non-empty).
func boundingBox(pts []grid.IntVect) grid.Box {
	lo, hi := pts[0], pts[0]
	for _, p := range pts[1:] {
		lo = lo.Min(p)
		hi = hi.Max(p)
	}
	return grid.NewBox(lo, hi)
}

// Cluster runs Berger–Rigoutsos on the tag points: recursively split the
// bounding box at signature holes or Laplacian inflection points until
// every cluster's fill efficiency (tags / box cells) reaches eff. The
// returned boxes are disjoint and cover every tag.
func Cluster(pts []grid.IntVect, eff float64) []grid.Box {
	if len(pts) == 0 {
		return nil
	}
	var out []grid.Box
	clusterRecurse(pts, eff, &out, 0)
	return out
}

const maxClusterDepth = 48

func clusterRecurse(pts []grid.IntVect, eff float64, out *[]grid.Box, depth int) {
	bb := boundingBox(pts)
	fill := float64(len(pts)) / float64(bb.NumPts())
	if fill >= eff || bb.NumPts() <= 4 || depth >= maxClusterDepth {
		*out = append(*out, bb)
		return
	}
	dir, split, ok := findSplit(pts, bb)
	if !ok {
		*out = append(*out, bb)
		return
	}
	var a, b []grid.IntVect
	for _, p := range pts {
		coord := p.X
		if dir == 1 {
			coord = p.Y
		}
		if coord < split {
			a = append(a, p)
		} else {
			b = append(b, p)
		}
	}
	if len(a) == 0 || len(b) == 0 { // degenerate split; accept the box
		*out = append(*out, bb)
		return
	}
	clusterRecurse(a, eff, out, depth+1)
	clusterRecurse(b, eff, out, depth+1)
}

// findSplit chooses the split plane. Preference order follows
// Berger–Rigoutsos: (1) the widest signature hole, (2) the strongest
// Laplacian inflection, (3) bisection of the long direction.
func findSplit(pts []grid.IntVect, bb grid.Box) (dir, split int, ok bool) {
	sigX := signature(pts, bb, 0)
	sigY := signature(pts, bb, 1)

	// 1) Holes: zero-signature planes strictly inside the box.
	if s, found := bestHole(sigX); found {
		return 0, bb.Lo.X + s, true
	}
	if s, found := bestHole(sigY); found {
		return 1, bb.Lo.Y + s, true
	}

	// 2) Laplacian inflection with the largest jump.
	bestDir, bestIdx, bestMag := -1, -1, 0
	if idx, mag, found := bestInflection(sigX); found {
		bestDir, bestIdx, bestMag = 0, idx, mag
	}
	if idx, mag, found := bestInflection(sigY); found && mag > bestMag {
		bestDir, bestIdx, bestMag = 1, idx, mag
	}
	if bestDir >= 0 {
		if bestDir == 0 {
			return 0, bb.Lo.X + bestIdx, true
		}
		return 1, bb.Lo.Y + bestIdx, true
	}

	// 3) Bisect the long direction if it is at least 2 wide.
	size := bb.Size()
	if size.X >= size.Y && size.X >= 2 {
		return 0, bb.Lo.X + size.X/2, true
	}
	if size.Y >= 2 {
		return 1, bb.Lo.Y + size.Y/2, true
	}
	return 0, 0, false
}

// signature histograms tag counts along direction dir (0 = per-column in
// X, 1 = per-row in Y).
func signature(pts []grid.IntVect, bb grid.Box, dir int) []int {
	var n, lo int
	if dir == 0 {
		n, lo = bb.Size().X, bb.Lo.X
	} else {
		n, lo = bb.Size().Y, bb.Lo.Y
	}
	sig := make([]int, n)
	for _, p := range pts {
		if dir == 0 {
			sig[p.X-lo]++
		} else {
			sig[p.Y-lo]++
		}
	}
	return sig
}

// bestHole returns the split offset at the middle of the widest run of
// zero-signature planes strictly inside (0, len).
func bestHole(sig []int) (int, bool) {
	bestStart, bestLen := -1, 0
	run, runStart := 0, -1
	// A tight bounding box guarantees sig[0] > 0 and sig[len-1] > 0, so any
	// zero run is strictly interior.
	for i := 1; i < len(sig)-1; i++ {
		if sig[i] == 0 {
			if run == 0 {
				runStart = i
			}
			run++
			if run > bestLen {
				bestStart, bestLen = runStart, run
			}
		} else {
			run = 0
		}
	}
	if bestLen == 0 || bestStart == 0 {
		return 0, false
	}
	return bestStart + bestLen/2, true
}

// bestInflection finds the index with the largest |Δlaplacian| sign
// change, the classic Berger–Rigoutsos edge detector.
func bestInflection(sig []int) (idx, mag int, ok bool) {
	n := len(sig)
	if n < 4 {
		return 0, 0, false
	}
	lap := make([]int, n)
	for i := 1; i < n-1; i++ {
		lap[i] = sig[i+1] - 2*sig[i] + sig[i-1]
	}
	best, bestMag := -1, 0
	for i := 1; i < n-2; i++ {
		if lap[i]*lap[i+1] < 0 {
			m := abs(lap[i] - lap[i+1])
			if m > bestMag {
				best, bestMag = i+1, m
			}
		}
	}
	if best <= 0 || best >= n {
		return 0, 0, false
	}
	return best, bestMag, true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MakeFineBoxArray converts level-l tags into the BoxArray for level l+1:
//
//  1. buffer tags by bufferCells (clipped to the level-l domain),
//  2. coarsen by blockingFactor/ratio so that refined boxes land aligned,
//  3. Berger–Rigoutsos cluster at gridEff efficiency,
//  4. refine back, clip to the domain, refine by ratio into l+1 index
//     space, and
//  5. split to maxGridSize with blockingFactor alignment.
//
// The result is disjoint and covers every (buffered) tag refined by ratio.
func MakeFineBoxArray(tags *TagSet, levelDomain grid.Box, ratio, blockingFactor, maxGridSize int, gridEff float64, bufferCells int) BoxArray {
	if tags.Len() == 0 {
		return NewBoxArray(nil)
	}
	buffered := tags.Buffer(bufferCells, levelDomain)
	cbf := blockingFactor / ratio
	if cbf < 1 {
		cbf = 1
	}
	coarse := buffered.Coarsen(cbf)
	raw := Cluster(coarse.Points(), gridEff)
	var fine []grid.Box
	for _, b := range raw {
		lb := b.Refine(cbf).Intersect(levelDomain)
		if lb.IsEmpty() {
			continue
		}
		fb := lb.Refine(ratio)
		fine = append(fine, fb.SplitMax(maxGridSize, blockingFactor)...)
	}
	return NewBoxArray(fine)
}
