// Package stats provides the small numerical toolbox the paper's modeling
// methodology needs: ordinary least squares linear regression (the paper
// applies "linear regression ... to formulate a simple analytical model"),
// scalar minimization for the dataset_growth calibration (a "single
// parameter optimization problem"), and the error metrics used to judge
// how close the MACSio kernel lands to the measured Castro outputs.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinearFit is the result of a simple OLS regression y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
	N                int
}

// OLS fits y = a + b*x by ordinary least squares.
func OLS(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: OLS length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, errors.New("stats: OLS needs at least 2 points")
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: OLS degenerate x (zero variance)")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx, N: n}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // y constant and perfectly predicted by the mean
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// MultiFit is the result of multiple linear regression via normal
// equations: y = Coef[0]*x0 + ... + Coef[k-1]*x_{k-1} (+ intercept if the
// caller appended a constant column).
type MultiFit struct {
	Coef []float64
	R2   float64
	N    int
}

// OLSMulti solves min ||X*beta - y||^2 through the normal equations with
// Gaussian elimination and partial pivoting. X is row-major: X[i] is the
// feature vector of observation i.
func OLSMulti(X [][]float64, y []float64) (MultiFit, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return MultiFit{}, fmt.Errorf("stats: OLSMulti bad shapes n=%d len(y)=%d", n, len(y))
	}
	k := len(X[0])
	if k == 0 || n < k {
		return MultiFit{}, fmt.Errorf("stats: OLSMulti needs n>=k, got n=%d k=%d", n, k)
	}
	// Build XtX (k x k) and Xty (k).
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k+1)
	}
	for _, row := range X {
		if len(row) != k {
			return MultiFit{}, errors.New("stats: OLSMulti ragged X")
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += X[r][i] * X[r][j]
			}
			xtx[i][j] = s
		}
		var s float64
		for r := 0; r < n; r++ {
			s += X[r][i] * y[r]
		}
		xtx[i][k] = s
	}
	beta, err := solveGauss(xtx)
	if err != nil {
		return MultiFit{}, err
	}
	// R^2 against the mean model.
	var my float64
	for _, v := range y {
		my += v
	}
	my /= float64(n)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		var pred float64
		for j := 0; j < k; j++ {
			pred += beta[j] * X[r][j]
		}
		ssRes += (y[r] - pred) * (y[r] - pred)
		ssTot += (y[r] - my) * (y[r] - my)
	}
	fit := MultiFit{Coef: beta, N: n}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// Predict evaluates the multiple regression at feature vector x.
func (f MultiFit) Predict(x []float64) float64 {
	var s float64
	for i, c := range f.Coef {
		s += c * x[i]
	}
	return s
}

// solveGauss solves the augmented system a (k x k+1) in place.
func solveGauss(a [][]float64) ([]float64, error) {
	k := len(a)
	for col := 0; col < k; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-300 {
			return nil, errors.New("stats: singular normal equations")
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		for j := col; j <= k; j++ {
			a[col][j] /= piv
		}
		for r := 0; r < k; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j <= k; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	out := make([]float64, k)
	for i := range out {
		out[i] = a[i][k]
	}
	return out, nil
}

// GoldenSection minimizes a unimodal function f on [a, b] to the given
// x-tolerance and returns the minimizing x and f(x). It is the workhorse
// behind the dataset_growth calibration: a 1-D search over the growth
// factor against the measured output series.
func GoldenSection(f func(float64) float64, a, b, tol float64) (xmin, fmin float64) {
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	if a > b {
		a, b = b, a
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	xmin = (a + b) / 2
	return xmin, f(xmin)
}

// GridThenGolden first scans [a,b] at `coarse` evenly spaced points to
// bracket the global minimum of a possibly multi-modal objective, then
// polishes with golden-section inside the best bracket.
func GridThenGolden(f func(float64) float64, a, b float64, coarse int, tol float64) (xmin, fmin float64) {
	if coarse < 3 {
		coarse = 3
	}
	best, bestF := a, math.Inf(1)
	step := (b - a) / float64(coarse-1)
	for i := 0; i < coarse; i++ {
		x := a + float64(i)*step
		if v := f(x); v < bestF {
			best, bestF = x, v
		}
	}
	lo, hi := best-step, best+step
	if lo < a {
		lo = a
	}
	if hi > b {
		hi = b
	}
	return GoldenSection(f, lo, hi, tol)
}

// RMSE is the root mean squared error between two equal-length series.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// MAPE is the mean absolute percentage error (in percent) of b against
// reference a; entries with a[i] == 0 are skipped.
func MAPE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	n := 0
	for i := range a {
		if a[i] == 0 {
			continue
		}
		s += math.Abs((b[i] - a[i]) / a[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * s / float64(n)
}

// SSE is the sum of squared errors.
func SSE(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Pearson returns the linear correlation coefficient of two series.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	n := float64(len(a))
	ma, mb = ma/n, mb/n
	var saa, sbb, sab float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		saa += da * da
		sbb += db * db
		sab += da * db
	}
	if saa == 0 || sbb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(saa*sbb)
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Std        float64
	Median, P90, P99 float64
}

// Summarize computes order statistics; it copies the input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var varSum float64
	for _, v := range s {
		varSum += (v - mean) * (v - mean)
	}
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(idx)
		if lo >= len(s)-1 {
			return s[len(s)-1]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return Summary{
		N: len(s), Min: s[0], Max: s[len(s)-1],
		Mean: mean, Std: math.Sqrt(varSum / float64(len(s))),
		Median: q(0.5), P90: q(0.9), P99: q(0.99),
	}
}

// ImbalanceRatio is max/mean of a positive sample — the load-balance metric
// used when discussing the paper's Fig. 8 per-task distribution.
func ImbalanceRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, max float64
	for _, v := range xs {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return math.NaN()
	}
	return max / mean
}

// CumSum returns the running sum of xs.
func CumSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var acc float64
	for i, v := range xs {
		acc += v
		out[i] = acc
	}
	return out
}
