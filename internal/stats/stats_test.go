package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOLSExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 + 2*v
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2, 1e-12) || !almost(fit.Intercept, 3, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %g", fit.R2)
	}
	if !almost(fit.Predict(10), 23, 1e-12) {
		t.Errorf("Predict(10) = %g", fit.Predict(10))
	}
}

func TestOLSNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 5+0.5*xi+rng.NormFloat64())
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 0.5, 0.01) {
		t.Errorf("slope = %g", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g", fit.R2)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := OLS([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance x accepted")
	}
}

func TestOLSMulti(t *testing.T) {
	// y = 1 + 2*a + 3*b with a constant column appended.
	var X [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		X = append(X, []float64{1, a, b})
		y = append(y, 1+2*a+3*b)
	}
	fit, err := OLSMulti(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, c := range fit.Coef {
		if !almost(c, want[i], 1e-8) {
			t.Errorf("coef[%d] = %g, want %g", i, c, want[i])
		}
	}
	if !almost(fit.R2, 1, 1e-10) {
		t.Errorf("R2 = %g", fit.R2)
	}
	if !almost(fit.Predict([]float64{1, 2, 3}), 1+4+9, 1e-8) {
		t.Errorf("Predict = %g", fit.Predict([]float64{1, 2, 3}))
	}
}

func TestOLSMultiErrors(t *testing.T) {
	if _, err := OLSMulti(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := OLSMulti([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("n < k accepted")
	}
	// Collinear columns -> singular normal equations.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := OLSMulti(X, []float64{1, 2, 3}); err == nil {
		t.Error("singular system accepted")
	}
}

func TestGoldenSection(t *testing.T) {
	x, fx := GoldenSection(func(x float64) float64 { return (x - 1.3) * (x - 1.3) }, 0, 4, 1e-9)
	if !almost(x, 1.3, 1e-7) {
		t.Errorf("xmin = %g", x)
	}
	if fx > 1e-12 {
		t.Errorf("fmin = %g", fx)
	}
	// Reversed bounds work too.
	x, _ = GoldenSection(func(x float64) float64 { return math.Abs(x - 2) }, 3, 0, 1e-9)
	if !almost(x, 2, 1e-6) {
		t.Errorf("reversed bounds xmin = %g", x)
	}
}

func TestGridThenGolden(t *testing.T) {
	// Multi-modal: local min near 0.5, global near 2.8.
	f := func(x float64) float64 {
		return math.Min((x-0.5)*(x-0.5)+0.5, (x-2.8)*(x-2.8))
	}
	x, _ := GridThenGolden(f, 0, 4, 41, 1e-9)
	if !almost(x, 2.8, 1e-6) {
		t.Errorf("global xmin = %g", x)
	}
}

func TestErrorMetrics(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 4}
	if RMSE(a, b) != 0 || SSE(a, b) != 0 {
		t.Error("identical series should have zero error")
	}
	if MAPE(a, b) != 0 {
		t.Error("identical series MAPE nonzero")
	}
	c := []float64{2, 3, 4, 5}
	if !almost(RMSE(a, c), 1, 1e-12) {
		t.Errorf("RMSE = %g", RMSE(a, c))
	}
	if !almost(SSE(a, c), 4, 1e-12) {
		t.Errorf("SSE = %g", SSE(a, c))
	}
	// MAPE vs reference a: |1/1|+|1/2|+|1/3|+|1/4| over 4 * 100.
	want := 100 * (1 + 0.5 + 1.0/3 + 0.25) / 4
	if !almost(MAPE(a, c), want, 1e-9) {
		t.Errorf("MAPE = %g want %g", MAPE(a, c), want)
	}
	if !math.IsNaN(RMSE(a, []float64{1})) {
		t.Error("mismatched RMSE should be NaN")
	}
	if !math.IsNaN(MAPE([]float64{0}, []float64{1})) {
		t.Error("all-zero reference MAPE should be NaN")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if !almost(Pearson(a, b), 1, 1e-12) {
		t.Errorf("Pearson = %g", Pearson(a, b))
	}
	bneg := []float64{10, 8, 6, 4, 2}
	if !almost(Pearson(a, bneg), -1, 1e-12) {
		t.Errorf("Pearson = %g", Pearson(a, bneg))
	}
	if !math.IsNaN(Pearson(a, []float64{1, 1, 1, 1, 1})) {
		t.Error("constant series should give NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Mean, 3, 1e-12) || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2), 1e-12) {
		t.Errorf("std = %g", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestImbalanceRatio(t *testing.T) {
	if !almost(ImbalanceRatio([]float64{1, 1, 1, 1}), 1, 1e-12) {
		t.Error("uniform sample should have ratio 1")
	}
	if !almost(ImbalanceRatio([]float64{0, 0, 4}), 3, 1e-12) {
		t.Errorf("ratio = %g", ImbalanceRatio([]float64{0, 0, 4}))
	}
	if !math.IsNaN(ImbalanceRatio(nil)) {
		t.Error("empty sample should be NaN")
	}
}

func TestCumSum(t *testing.T) {
	got := CumSum([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CumSum = %v", got)
		}
	}
	if len(CumSum(nil)) != 0 {
		t.Error("empty CumSum should be empty")
	}
}

func TestCumSumProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Clamp to a sane range: NaN/Inf break comparisons and magnitudes
		// near MaxFloat64 make the running sum lose all relative precision.
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.Abs(xs[i]) > 1e12 {
				xs[i] = 1
			}
		}
		cs := CumSum(xs)
		if len(cs) != len(xs) {
			return false
		}
		for i := 1; i < len(cs); i++ {
			if !almost(cs[i]-cs[i-1], xs[i], math.Abs(xs[i])*1e-9+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGoldenSectionMatchesGridOnCalibrationShape(t *testing.T) {
	// Objective shaped like the dataset_growth calibration: SSE between a
	// geometric series and a measured one; unimodal in the growth factor.
	measured := make([]float64, 20)
	for i := range measured {
		measured[i] = 1e6 * math.Pow(1.013075, float64(i))
	}
	obj := func(g float64) float64 {
		var s float64
		for i := range measured {
			pred := 1e6 * math.Pow(g, float64(i))
			s += (pred - measured[i]) * (pred - measured[i])
		}
		return s
	}
	x, _ := GoldenSection(obj, 1.0, 1.05, 1e-10)
	if !almost(x, 1.013075, 1e-6) {
		t.Errorf("recovered growth = %g", x)
	}
}
