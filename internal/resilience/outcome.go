package resilience

import (
	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
)

// Stats counts what the mitigation engine actually did during a run.
// The zero value means no policy fired; a nil *Stats means no engine
// ran at all (zero policy).
type Stats struct {
	// AdaptiveCheckpoints counts checkpoints the adaptive cadence
	// triggered (Young/Daly-retimed, not fixed-interval).
	AdaptiveCheckpoints int `json:"adaptive_checkpoints,omitempty"`
	// ShedBursts / ShedBytes count plot bursts degraded-mode output
	// skipped and the nominal bytes they would have written.
	ShedBursts int   `json:"shed_bursts,omitempty"`
	ShedBytes  int64 `json:"shed_bytes,omitempty"`
	// QuarantinedTargets counts distinct targets whose circuit breaker
	// ever opened.
	QuarantinedTargets int `json:"quarantined_targets,omitempty"`
	// ObservedMTBFSeconds is the engine's final online MTBF estimate
	// (0 before the first observed interrupt).
	ObservedMTBFSeconds float64 `json:"observed_mtbf_seconds,omitempty"`
}

// Outcome evaluates one finished run under the mitigation lens: the
// post-hoc faults.Analyze recovery model plus the forward-progress
// decomposition the MitigationReport compares mitigated vs. unmitigated
// runs on.
type Outcome struct {
	Name string
	// Resilience is the post-hoc recovery model (checkpoints,
	// interrupts, lost work, restart reads) shared with the
	// ResilienceReport.
	Resilience faults.Resilience
	// RetryStormSeconds sums unmitigated target-outage event seconds —
	// the time writes burned retrying against dead targets. Quarantine
	// absorbs storms, so this is the number mitigation drives down.
	RetryStormSeconds float64
	// FaultCriticalSeconds is the critical-path fault time: the max over
	// ranks of each rank's cumulative fault-event seconds. It bounds how
	// much of the makespan faults consumed.
	FaultCriticalSeconds float64
	// MitigatedWrites counts writes a policy absorbed a fault on.
	MitigatedWrites int
	// Stats is the engine's own action counters (zero without one).
	Stats Stats
	// ForwardProgress is useful work over total cost:
	// max(0, makespan − FaultCriticalSeconds) /
	// (makespan + lost work + restart reads). 1 for a fault-free run.
	// Unlike Resilience.ForwardProgress (which only models recovery),
	// the numerator discounts fault time burned on the critical path, so
	// absorbing retry storms raises it.
	ForwardProgress float64
}

// Evaluate computes the mitigation outcome for a finished run. stats
// may be nil (no engine ran). Deterministic: a pure function of its
// arguments.
func Evaluate(name string, plan *faults.Plan, records []iosim.WriteRecord, events []iosim.FaultEvent, stats *Stats) Outcome {
	o := Outcome{Name: name, Resilience: faults.Analyze(plan, records, events)}
	if stats != nil {
		o.Stats = *stats
	}
	perRank := map[int]float64{}
	for _, ev := range events {
		perRank[ev.Rank] += ev.Seconds
		if perRank[ev.Rank] > o.FaultCriticalSeconds {
			o.FaultCriticalSeconds = perRank[ev.Rank]
		}
		if ev.Mitigated {
			o.MitigatedWrites++
			continue
		}
		if ev.Kind == faults.KindTargetOutage {
			o.RetryStormSeconds += ev.Seconds
		}
	}
	useful := o.Resilience.Makespan - o.FaultCriticalSeconds
	if useful < 0 {
		useful = 0
	}
	total := o.Resilience.Makespan + o.Resilience.LostWorkSeconds + o.Resilience.RestartReadSeconds
	if total > 0 {
		o.ForwardProgress = useful / total
	} else {
		o.ForwardProgress = 1
	}
	return o
}
