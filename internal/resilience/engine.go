package resilience

import (
	"sort"
	"sync"

	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
)

// Engine is the closed-loop mitigation engine: between bursts it
// observes the deterministic fault-event stream a run has produced so
// far and applies the enabled Policy — retiming checkpoints, opening
// target circuit breakers, and shedding plot bursts.
//
// Determinism contract: every Engine method must be called between
// bursts (never while rank goroutines are writing), from one goroutine
// at a time per decision point. Decisions are pure functions of
// (policy, plan, the merged FaultEvents stream, rank clocks) — all of
// which are themselves deterministic under the iosim snapshot
// contract — so mitigated runs replay identically under -race and any
// goroutine interleaving. The engine never mutates injector state
// mid-burst: quarantine maps are installed through iosim.Quarantiner
// only from Observe, which the run loops call between bursts.
//
// All methods are safe on a nil receiver (no-ops returning zero
// values), so run loops call them unconditionally and the zero-policy
// path stays byte-identical.
type Engine struct {
	policy Policy
	plan   faults.Plan
	nprocs int
	quar   iosim.Quarantiner

	mu  sync.Mutex
	est faults.MTBFEstimator

	// lastNow / lastFaultMax / pressure implement the sliding fault-
	// pressure window: pressure is Δ(max-rank cumulative fault seconds)
	// over Δ(simulated now) between consecutive observations.
	lastNow      float64
	lastFaultMax float64
	pressure     float64

	// open maps target → breaker-open-until, rebuilt from scratch from
	// the event stream on every observation (a pure function of the
	// stream, so order of observations cannot matter). everOpened
	// accumulates targets that ever tripped, for Stats.
	open       map[int]float64
	everOpened map[int]bool

	// dumpWallSum/dumpWalls average observed burst wall times — the C
	// in Young's sqrt(2·C·MTBF). lastCheckpointEnd anchors the adaptive
	// checkpoint interval: only checkpoint bursts move it (a plot burst
	// does not reset the time-at-risk since the last checkpoint).
	// shedStreak counts consecutive shed plots.
	dumpWallSum       float64
	dumpWalls         int
	lastCheckpointEnd float64
	shedStreak        int

	stats Stats
}

// New builds an engine for a validated policy against a run's fault
// plan. Returns nil for a zero policy so callers can thread the result
// unconditionally. q receives quarantine maps (usually the
// *faults.Injector); nil disables the breaker installs while keeping
// the rest of the engine live.
func New(p *Policy, plan faults.Plan, nprocs int, q iosim.Quarantiner) *Engine {
	if p.Zero() {
		return nil
	}
	return &Engine{
		policy:     *p,
		plan:       plan,
		nprocs:     nprocs,
		quar:       q,
		open:       map[int]float64{},
		everOpened: map[int]bool{},
	}
}

// ForFileSystem builds an engine against a filesystem's installed fault
// injector. Returns nil when the policy is zero or the filesystem has
// no *faults.Injector — with nothing injecting faults there is nothing
// to mitigate, and the run must stay byte-identical.
func ForFileSystem(p *Policy, fs *iosim.FileSystem, nprocs int) *Engine {
	if p.Zero() || fs == nil {
		return nil
	}
	inj, ok := fs.Config().Faults.(*faults.Injector)
	if !ok || inj == nil {
		return nil
	}
	return New(p, inj.Plan(), nprocs, inj)
}

// Clock returns the run's frontier: the max simulated clock across the
// engine's ranks. 0 on a nil engine.
func (e *Engine) Clock(fs *iosim.FileSystem) float64 {
	if e == nil {
		return 0
	}
	return e.clock(fs)
}

func (e *Engine) clock(fs *iosim.FileSystem) float64 {
	var now float64
	for r := 0; r < e.nprocs; r++ {
		if c := fs.Clock(r); c > now {
			now = c
		}
	}
	return now
}

// Observe ingests the run's state between bursts: refreshes the online
// MTBF estimate, the fault-pressure window, and the circuit breakers
// (installing the active quarantine set into the injector). No-op on a
// nil engine. The run loops call it implicitly through ShedPlot /
// CheckpointDue / BurstWritten; macsio's rank 0 calls it directly.
func (e *Engine) Observe(fs *iosim.FileSystem) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observe(fs)
}

// observe does the work of Observe; callers hold e.mu.
func (e *Engine) observe(fs *iosim.FileSystem) {
	now := e.clock(fs)

	// Online MTBF: replay the prefix-stable interrupt schedule up to
	// now. Recomputed from scratch so the estimate is a pure function of
	// (plan, now) — no drift across observation cadences.
	e.est = faults.MTBFEstimator{}
	for _, t := range e.plan.Interrupts(now) {
		if t <= now {
			e.est.Observe(t)
		}
	}
	e.est.AdvanceTo(now)

	events := fs.FaultEvents()

	// Fault-pressure window: critical-path (max over ranks) cumulative
	// fault seconds, differenced against the last observation.
	perRank := map[int]float64{}
	var faultMax float64
	for _, ev := range events {
		perRank[ev.Rank] += ev.Seconds
		if perRank[ev.Rank] > faultMax {
			faultMax = perRank[ev.Rank]
		}
	}
	if now > e.lastNow {
		e.pressure = (faultMax - e.lastFaultMax) / (now - e.lastNow)
		e.lastFaultMax = faultMax
		e.lastNow = now
	}

	// Circuit breakers: rebuild per-target trip state from a
	// chronologically sorted copy of the stream (the rank-major merge
	// order is deterministic but not chronological). Every
	// quarantineThreshold-th observed unmitigated retry storm on a
	// target opens its breaker for the cooldown window, anchored at the
	// tripping event's own start time — a pure function of the stream,
	// never of when the engine happened to look.
	if e.policy.Quarantine && e.quar != nil {
		sorted := make([]iosim.FaultEvent, len(events))
		copy(sorted, events)
		sort.SliceStable(sorted, func(i, j int) bool {
			if sorted[i].Start != sorted[j].Start {
				return sorted[i].Start < sorted[j].Start
			}
			return sorted[i].Rank < sorted[j].Rank
		})
		k := e.policy.quarantineThreshold()
		cooldown := e.policy.quarantineCooldown()
		counts := map[int]int{}
		open := map[int]float64{}
		for _, ev := range sorted {
			if ev.Kind != faults.KindTargetOutage || ev.Target < 0 || ev.Mitigated {
				continue // mitigated writes neither count nor reset
			}
			counts[ev.Target]++
			if counts[ev.Target] >= k {
				open[ev.Target] = ev.Start + cooldown
				counts[ev.Target] = 0
			}
		}
		e.open = open
		active := map[int]float64{}
		for tgt, until := range open {
			e.everOpened[tgt] = true
			if until > now {
				active[tgt] = until
			}
		}
		e.quar.Quarantine(active)
	}
}

// ShedPlot decides whether to shed the upcoming plot burst under
// degraded-mode output, recording the shed's nominal bytes when it
// does. Checkpoints must never be routed through ShedPlot. false on a
// nil engine.
func (e *Engine) ShedPlot(fs *iosim.FileSystem, nominalBytes int64) bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observe(fs)
	if !e.policy.DegradedOutput {
		return false
	}
	if e.pressure < e.policy.shedPressure() || e.shedStreak >= e.policy.maxShedStreak() {
		return false
	}
	e.shedStreak++
	e.stats.ShedBursts++
	e.stats.ShedBytes += nominalBytes
	return true
}

// CheckpointDue reports whether the adaptive cadence calls for a
// checkpoint now: the time at risk since the last checkpoint (run start
// if none) has reached the Young/Daly interval sqrt(2·C·MTBF) for the
// observed mean burst wall C and the online MTBF estimate (floored by
// MinCheckpointSeconds).
// Always false before the first observed interrupt or the first written
// burst — the engine does not retime on zero evidence. false on a nil
// engine.
func (e *Engine) CheckpointDue(fs *iosim.FileSystem) bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observe(fs)
	if !e.policy.AdaptiveCheckpoint {
		return false
	}
	mtbf := e.est.Estimate()
	if mtbf <= 0 || e.dumpWalls == 0 {
		return false
	}
	interval := faults.YoungInterval(e.dumpWallSum/float64(e.dumpWalls), mtbf)
	if interval < e.policy.MinCheckpointSeconds {
		interval = e.policy.MinCheckpointSeconds
	}
	if interval <= 0 {
		return false
	}
	return e.lastNow-e.lastCheckpointEnd >= interval
}

// BurstWritten records a completed output burst that began at startedAt
// on the run frontier (Clock before the burst): it feeds the mean
// burst-wall estimate, re-anchors the adaptive checkpoint interval when
// the burst was a checkpoint, and — for plots — resets the shed streak.
// No-op on a nil engine.
func (e *Engine) BurstWritten(fs *iosim.FileSystem, startedAt float64, checkpoint bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock(fs)
	if wall := now - startedAt; wall > 0 {
		e.dumpWallSum += wall
		e.dumpWalls++
	}
	if checkpoint {
		e.lastCheckpointEnd = now
		if e.policy.AdaptiveCheckpoint {
			e.stats.AdaptiveCheckpoints++
		}
	} else {
		e.shedStreak = 0
	}
	e.observe(fs)
}

// Adaptive reports whether the engine owns the checkpoint cadence
// (fixed-interval checkpointing should stand down). false on a nil
// engine.
func (e *Engine) Adaptive() bool {
	return e != nil && e.policy.AdaptiveCheckpoint
}

// AvoidTargets returns the quarantined-target set as of the last
// observation, for remap routing (amr.RemapToTargetsAvoiding). Empty on
// a nil engine.
func (e *Engine) AvoidTargets() map[int]bool {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	avoid := map[int]bool{}
	for tgt, until := range e.open {
		if until > e.lastNow {
			avoid[tgt] = true
		}
	}
	if len(avoid) == 0 {
		return nil
	}
	return avoid
}

// NodeFactor returns the node's effective NIC bandwidth multiplier as
// of the last observation: the product of active nic-degrade factors
// covering the node (1 when healthy). The remap uses it to inflate
// degraded nodes' loads so work routes away from them. 1 on a nil
// engine.
func (e *Engine) NodeFactor(node int) float64 {
	if e == nil {
		return 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nodeFactor(node)
}

func (e *Engine) nodeFactor(node int) float64 {
	f := 1.0
	for _, ev := range e.plan.Events {
		if ev.Kind != faults.KindNICDegrade || !ev.Active(e.lastNow) {
			continue
		}
		if ev.Node >= 0 && ev.Node != node {
			continue
		}
		if ev.Factor > 0 && ev.Factor < 1 {
			f *= ev.Factor
		}
	}
	return f
}

// ScaleLoads inflates per-box remap loads whose owning rank sits on a
// NIC-degraded node by 1/NodeFactor, so the LPT packing sees degraded
// nodes as proportionally slower and routes bytes away from them.
// loads is modified in place; owner[i] is box i's writing rank. No-op
// on a nil engine or a placement-free topology.
func (e *Engine) ScaleLoads(topo iosim.Topology, nprocs int, owner []int, loads []int64) {
	if e == nil || !topo.Enabled() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	factors := map[int]float64{}
	for i, o := range owner {
		if o < 0 || i >= len(loads) {
			continue
		}
		node := topo.NodeOf(o, nprocs)
		f, ok := factors[node]
		if !ok {
			f = e.nodeFactor(node)
			factors[node] = f
		}
		if f > 0 && f < 1 {
			loads[i] = int64(float64(loads[i]) / f)
		}
	}
}

// Stats returns a snapshot of the engine's mitigation counters; nil on
// a nil engine (no mitigation ran).
func (e *Engine) Stats() *Stats {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.QuarantinedTargets = len(e.everOpened)
	s.ObservedMTBFSeconds = e.est.Estimate()
	return &s
}
