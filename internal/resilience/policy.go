package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Default policy knobs (Policy zero values select these when the
// corresponding policy is enabled).
const (
	// DefaultQuarantineThreshold is the number of observed unmitigated
	// retry storms on one target before its circuit breaker opens.
	DefaultQuarantineThreshold = 2
	// DefaultQuarantineCooldown is the simulated seconds a breaker stays
	// open once tripped.
	DefaultQuarantineCooldown = 30
	// DefaultShedPressure is the fault-pressure fraction (critical-path
	// fault seconds per simulated second, over the last observation
	// window) above which degraded-mode output sheds plot bursts.
	DefaultShedPressure = 0.35
	// DefaultMaxShedStreak caps consecutive shed plots: after this many,
	// the next plot is forced through so output never starves entirely.
	DefaultMaxShedStreak = 1
)

// Policy selects and tunes the closed-loop mitigation policies the
// resilience Engine applies between bursts. The zero value (and nil)
// disables everything: no engine is built and the run stays
// byte-identical to the policy-free path (property-test-pinned).
//
// Policies compose: any subset of the three booleans may be enabled.
// Policy round-trips through JSON on campaign.Case.Mitigate and the
// -mitigate CLI flags; unknown fields are rejected (Parse).
type Policy struct {
	// AdaptiveCheckpoint retimes checkpoints to the Young/Daly interval
	// computed from the online MTBF estimate instead of the fixed step
	// cadence. No checkpoint is retimed before the first observed
	// interrupt (no evidence, no estimate).
	AdaptiveCheckpoint bool `json:"adaptive_checkpoint,omitempty"`
	// MinCheckpointSeconds floors the adaptive interval so a tiny MTBF
	// estimate cannot trigger a checkpoint storm.
	MinCheckpointSeconds float64 `json:"min_checkpoint_seconds,omitempty"`

	// Quarantine opens a per-target circuit breaker after
	// QuarantineThreshold observed retry storms: quarantined writes fail
	// over immediately instead of re-paying the storm, and the next
	// remap routes around the quarantined targets.
	Quarantine bool `json:"quarantine,omitempty"`
	// QuarantineThreshold is the storms-per-target trip count; 0 selects
	// DefaultQuarantineThreshold.
	QuarantineThreshold int `json:"quarantine_threshold,omitempty"`
	// QuarantineCooldown is the breaker-open window in simulated
	// seconds; 0 selects DefaultQuarantineCooldown.
	QuarantineCooldown float64 `json:"quarantine_cooldown,omitempty"`

	// DegradedOutput sheds plotfile bursts (never checkpoints) while
	// fault pressure is above ShedPressure, recording the shed bytes.
	DegradedOutput bool `json:"degraded_output,omitempty"`
	// ShedPressure is the pressure threshold in (0, 1]; 0 selects
	// DefaultShedPressure.
	ShedPressure float64 `json:"shed_pressure,omitempty"`
	// MaxShedStreak caps consecutive sheds; 0 selects
	// DefaultMaxShedStreak.
	MaxShedStreak int `json:"max_shed_streak,omitempty"`
}

// Zero reports whether the policy enables nothing: a nil or zero policy
// builds no engine and leaves every run path untouched.
func (p *Policy) Zero() bool {
	return p == nil || (!p.AdaptiveCheckpoint && !p.Quarantine && !p.DegradedOutput)
}

func (p *Policy) quarantineThreshold() int {
	if p.QuarantineThreshold > 0 {
		return p.QuarantineThreshold
	}
	return DefaultQuarantineThreshold
}

func (p *Policy) quarantineCooldown() float64 {
	if p.QuarantineCooldown > 0 {
		return p.QuarantineCooldown
	}
	return DefaultQuarantineCooldown
}

func (p *Policy) shedPressure() float64 {
	if p.ShedPressure > 0 {
		return p.ShedPressure
	}
	return DefaultShedPressure
}

func (p *Policy) maxShedStreak() int {
	if p.MaxShedStreak > 0 {
		return p.MaxShedStreak
	}
	return DefaultMaxShedStreak
}

// Validate rejects malformed policies the way faults.Plan.Validate
// rejects malformed plans: negative knobs and out-of-range thresholds.
func (p *Policy) Validate() error {
	if p == nil {
		return nil
	}
	if p.MinCheckpointSeconds < 0 {
		return fmt.Errorf("resilience: negative min_checkpoint_seconds %g", p.MinCheckpointSeconds)
	}
	if p.QuarantineThreshold < 0 {
		return fmt.Errorf("resilience: negative quarantine_threshold %d", p.QuarantineThreshold)
	}
	if p.QuarantineCooldown < 0 {
		return fmt.Errorf("resilience: negative quarantine_cooldown %g", p.QuarantineCooldown)
	}
	if p.ShedPressure < 0 || p.ShedPressure > 1 {
		return fmt.Errorf("resilience: shed_pressure %g outside [0, 1]", p.ShedPressure)
	}
	if p.MaxShedStreak < 0 {
		return fmt.Errorf("resilience: negative max_shed_streak %d", p.MaxShedStreak)
	}
	return nil
}

// Parse decodes and validates a JSON policy. Unknown fields are
// rejected so typos ("treshold") fail loudly instead of mitigating
// nothing.
func Parse(data []byte) (*Policy, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("resilience: malformed policy JSON: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load resolves a -mitigate CLI argument: empty disables mitigation,
// "default" (or "on") selects DefaultPolicy, an inline JSON object
// (first non-space byte '{') is parsed directly, anything else is a
// path to a JSON policy file.
func Load(arg string) (*Policy, error) {
	s := strings.TrimSpace(arg)
	if s == "" {
		return nil, nil
	}
	if s == "default" || s == "on" {
		return DefaultPolicy(), nil
	}
	if strings.HasPrefix(s, "{") {
		return Parse([]byte(s))
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("resilience: reading policy %s: %w", arg, err)
	}
	return Parse(data)
}

// DefaultPolicy enables all three mitigation policies with default
// knobs — what `-mitigate default` and the mitigation sweeps use.
func DefaultPolicy() *Policy {
	return &Policy{
		AdaptiveCheckpoint: true,
		Quarantine:         true,
		DegradedOutput:     true,
	}
}
