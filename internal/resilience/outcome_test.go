package resilience

import (
	"testing"

	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
)

func TestEvaluateFaultFree(t *testing.T) {
	o := Evaluate("clean", nil, nil, nil, nil)
	if o.ForwardProgress != 1 {
		t.Errorf("fault-free forward progress = %g, want 1", o.ForwardProgress)
	}
	if o.RetryStormSeconds != 0 || o.FaultCriticalSeconds != 0 || o.MitigatedWrites != 0 {
		t.Errorf("fault-free outcome carries fault numbers: %+v", o)
	}
}

func TestEvaluateSeparatesMitigatedStorms(t *testing.T) {
	records := []iosim.WriteRecord{
		{Rank: 0, Bytes: 100, Start: 0, Duration: 3, Labels: iosim.Labels{Step: 0}},
		{Rank: 1, Bytes: 100, Start: 0, Duration: 1, Labels: iosim.Labels{Step: 0}},
	}
	events := []iosim.FaultEvent{
		{Kind: faults.KindTargetOutage, Rank: 0, Target: 0, Start: 0, Seconds: 2.1, Retries: 3, FailoverTarget: 1},
		{Kind: faults.KindTargetOutage, Rank: 0, Target: 0, Start: 2.5, Seconds: 0, Retries: 0, FailoverTarget: 1, Mitigated: true},
		{Kind: faults.KindNICDegrade, Rank: 1, Node: 0, Start: 0, Seconds: 0.4},
	}
	o := Evaluate("run", nil, records, events, &Stats{QuarantinedTargets: 1})

	// Only the unmitigated storm counts toward retry-storm time.
	if o.RetryStormSeconds != 2.1 {
		t.Errorf("retry-storm = %g, want 2.1 (mitigated storms excluded)", o.RetryStormSeconds)
	}
	if o.MitigatedWrites != 1 {
		t.Errorf("mitigated writes = %d, want 1", o.MitigatedWrites)
	}
	// Critical path: rank 0 accumulated 2.1s, rank 1 only 0.4s.
	if o.FaultCriticalSeconds != 2.1 {
		t.Errorf("fault-critical = %g, want 2.1", o.FaultCriticalSeconds)
	}
	if o.Stats.QuarantinedTargets != 1 {
		t.Errorf("stats not threaded: %+v", o.Stats)
	}
	if o.ForwardProgress <= 0 || o.ForwardProgress >= 1 {
		t.Errorf("faulted forward progress = %g, want in (0, 1)", o.ForwardProgress)
	}

	// Dropping the mitigation (the storm pays full price) must strictly
	// lower forward progress: the FP metric rewards absorbed storms.
	unmit := events
	unmit[1].Mitigated = false
	unmit[1].Seconds = 2.1
	unmit[1].Retries = 3
	worse := Evaluate("run", nil, records, unmit, nil)
	if worse.ForwardProgress >= o.ForwardProgress {
		t.Errorf("unmitigated FP %g >= mitigated %g", worse.ForwardProgress, o.ForwardProgress)
	}
	if worse.RetryStormSeconds <= o.RetryStormSeconds {
		t.Errorf("unmitigated storm %g <= mitigated %g", worse.RetryStormSeconds, o.RetryStormSeconds)
	}
}
