package resilience

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPolicyZero(t *testing.T) {
	var nilPolicy *Policy
	if !nilPolicy.Zero() {
		t.Error("nil policy not zero")
	}
	if !(&Policy{}).Zero() {
		t.Error("empty policy not zero")
	}
	// Knobs alone enable nothing: only the three booleans arm policies.
	if !(&Policy{QuarantineThreshold: 5, ShedPressure: 0.5}).Zero() {
		t.Error("knobs-only policy not zero")
	}
	if (&Policy{Quarantine: true}).Zero() {
		t.Error("armed policy reported zero")
	}
	if DefaultPolicy().Zero() {
		t.Error("default policy reported zero")
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{MinCheckpointSeconds: -1},
		{QuarantineThreshold: -2},
		{QuarantineCooldown: -0.5},
		{ShedPressure: -0.1},
		{ShedPressure: 1.5},
		{MaxShedStreak: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d validated: %+v", i, p)
		}
	}
	var nilPolicy *Policy
	if err := nilPolicy.Validate(); err != nil {
		t.Errorf("nil policy rejected: %v", err)
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Errorf("default policy rejected: %v", err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"quarantine": true, "treshold": 3}`)); err == nil {
		t.Error("typo field accepted")
	}
	if _, err := Parse([]byte(`{"bogus": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	p, err := Parse([]byte(`{"quarantine": true, "quarantine_threshold": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Quarantine || p.QuarantineThreshold != 3 {
		t.Errorf("parsed policy wrong: %+v", p)
	}
}

func TestLoad(t *testing.T) {
	if p, err := Load(""); err != nil || p != nil {
		t.Errorf("empty arg: %v %v", p, err)
	}
	for _, arg := range []string{"default", "on"} {
		p, err := Load(arg)
		if err != nil {
			t.Fatal(err)
		}
		if !p.AdaptiveCheckpoint || !p.Quarantine || !p.DegradedOutput {
			t.Errorf("Load(%q) = %+v, want all policies on", arg, p)
		}
	}
	p, err := Load(`{"degraded_output": true, "shed_pressure": 0.2}`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.DegradedOutput || p.ShedPressure != 0.2 {
		t.Errorf("inline policy wrong: %+v", p)
	}
	if _, err := Load(`{"shed_pressure": 7}`); err == nil {
		t.Error("out-of-range inline policy accepted")
	}

	path := filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(path, []byte(`{"adaptive_checkpoint": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !p.AdaptiveCheckpoint || p.Quarantine {
		t.Errorf("file policy wrong: %+v", p)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil ||
		!strings.Contains(err.Error(), "reading policy") {
		t.Errorf("missing file: %v", err)
	}
}

func TestKnobDefaults(t *testing.T) {
	p := &Policy{Quarantine: true, DegradedOutput: true}
	if got := p.quarantineThreshold(); got != DefaultQuarantineThreshold {
		t.Errorf("threshold default = %d", got)
	}
	if got := p.quarantineCooldown(); got != DefaultQuarantineCooldown {
		t.Errorf("cooldown default = %g", got)
	}
	if got := p.shedPressure(); got != DefaultShedPressure {
		t.Errorf("pressure default = %g", got)
	}
	if got := p.maxShedStreak(); got != DefaultMaxShedStreak {
		t.Errorf("streak default = %d", got)
	}
	p = &Policy{Quarantine: true, QuarantineThreshold: 7, QuarantineCooldown: 3, ShedPressure: 0.9, MaxShedStreak: 4}
	if p.quarantineThreshold() != 7 || p.quarantineCooldown() != 3 || p.shedPressure() != 0.9 || p.maxShedStreak() != 4 {
		t.Errorf("explicit knobs not honored: %+v", p)
	}
}
