// Package resilience closes the fault loop: it turns the deterministic
// fault-event stream internal/faults injects into between-burst
// mitigation decisions, so runs react to failures instead of just
// paying for them.
//
// Three composable policies live behind a JSON Policy (threaded as
// campaign.Case.Mitigate, sim/surrogate Options.Mitigate, and the
// -mitigate CLI flags):
//
//   - Adaptive checkpoint cadence: an online censored-MLE MTBF estimate
//     (faults.MTBFEstimator, replaying the prefix-stable
//     Plan.Interrupts schedule) retimes the next checkpoint to Young's
//     sqrt(2·C·MTBF) interval, where C is the observed mean burst wall.
//   - Target quarantine: after K observed retry storms on a storage
//     target, a circuit breaker opens for a cooldown window. The
//     breaker map is installed into the fault injector between bursts
//     (iosim.Quarantiner), so quarantined writes fail over immediately
//     — labeled WriteRecord.Mitigated / FaultEvent.Mitigated — instead
//     of re-paying MaxRetries·RetryTimeout plus backoff per write; the
//     quarantine set also feeds amr.RemapToTargetsAvoiding so the next
//     layout remap routes around degraded targets and NIC-degraded
//     nodes.
//   - Degraded-mode output: while critical-path fault pressure exceeds
//     a threshold, plotfile bursts are shed (never checkpoints) and the
//     shed bytes recorded; a max-streak cap forces output through
//     periodically so plots never starve.
//
// # Determinism
//
// Every engine decision is a pure function of (policy, plan, the merged
// FaultEvents stream, rank clocks) — state that is itself deterministic
// under iosim's snapshot-at-BeginBurst contract. The engine only acts
// between bursts: breaker maps are recomputed from scratch from a
// chronologically sorted copy of the stream (never from incremental
// observation order) and published atomically before the next burst's
// first write. Mitigated runs therefore replay byte-identically under
// -race and any goroutine interleaving, and a zero Policy builds no
// engine at all, keeping the policy-free path property-test-pinned
// byte-identical to pre-mitigation behavior.
//
// Evaluate condenses a finished run into an Outcome — retry-storm
// seconds, critical-path fault time, and a forward-progress rate whose
// numerator discounts fault time burned on the critical path — which
// report.MitigationReport compares mitigated vs. unmitigated.
package resilience
