package resilience

import (
	"testing"

	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
)

// faultedFS builds a 2-rank filesystem with target modeling (rank r →
// target r) and the plan's injector installed.
func faultedFS(t *testing.T, plan *faults.Plan) *iosim.FileSystem {
	t.Helper()
	cfg := iosim.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.Topology = iosim.Topology{Nodes: 1, Targets: 2}
	inj := plan.Injector(cfg.Topology)
	if inj == nil {
		t.Fatal("plan built no injector")
	}
	cfg.Faults = inj
	return iosim.New(cfg, "")
}

// outagePlan takes target 0 down open-endedly: every rank-0 write storms
// and fails over to target 1.
func outagePlan() *faults.Plan {
	return &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindTargetOutage, Start: 0, Target: 0},
	}}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	fs := iosim.New(iosim.DefaultConfig(), "")
	if e.Clock(fs) != 0 {
		t.Error("nil Clock != 0")
	}
	e.Observe(fs)
	if e.ShedPlot(fs, 100) {
		t.Error("nil engine shed a plot")
	}
	if e.CheckpointDue(fs) {
		t.Error("nil engine demanded a checkpoint")
	}
	e.BurstWritten(fs, 0, true)
	if e.Adaptive() {
		t.Error("nil engine claims adaptive cadence")
	}
	if e.AvoidTargets() != nil {
		t.Error("nil engine avoids targets")
	}
	if e.NodeFactor(0) != 1 {
		t.Error("nil NodeFactor != 1")
	}
	e.ScaleLoads(iosim.Topology{Nodes: 2, Targets: 2}, 2, []int{0}, []int64{10})
	if e.Stats() != nil {
		t.Error("nil engine returned stats")
	}
}

func TestForFileSystemNilPaths(t *testing.T) {
	fs := faultedFS(t, outagePlan())
	if eng := ForFileSystem(nil, fs, 2); eng != nil {
		t.Error("nil policy built an engine")
	}
	if eng := ForFileSystem(&Policy{}, fs, 2); eng != nil {
		t.Error("zero policy built an engine")
	}
	// No injector installed → nothing to mitigate.
	plain := iosim.New(iosim.DefaultConfig(), "")
	if eng := ForFileSystem(DefaultPolicy(), plain, 2); eng != nil {
		t.Error("injector-free filesystem built an engine")
	}
	if eng := ForFileSystem(DefaultPolicy(), fs, 2); eng == nil {
		t.Error("armed policy + injector built no engine")
	}
}

// TestQuarantineBreaker drives the full loop: rank 0's writes storm
// against the dead target, the breaker trips after the threshold, the
// quarantine set reaches the injector, and the next write fails over
// immediately as a Mitigated event.
func TestQuarantineBreaker(t *testing.T) {
	fs := faultedFS(t, outagePlan())
	eng := ForFileSystem(&Policy{Quarantine: true}, fs, 2)
	if eng == nil {
		t.Fatal("no engine")
	}

	write := func(step int, name string) {
		fs.BeginBurst(2)
		if _, err := fs.WriteSize(0, name, 1<<20, iosim.Labels{Step: step}); err != nil {
			t.Fatal(err)
		}
		fs.EndBurst()
	}

	// Two storms (the default threshold) in the first two bursts.
	write(0, "a")
	write(1, "b")
	eng.Observe(fs)
	avoid := eng.AvoidTargets()
	if !avoid[0] {
		t.Fatalf("breaker did not trip after 2 storms: avoid = %v", avoid)
	}
	if avoid[1] {
		t.Fatalf("healthy target quarantined: %v", avoid)
	}

	// The quarantined write fails over immediately: Mitigated, no storm.
	write(2, "c")
	evs := fs.FaultEvents()
	if len(evs) != 3 {
		t.Fatalf("got %d fault events, want 3", len(evs))
	}
	for i := 0; i < 2; i++ {
		if evs[i].Mitigated || evs[i].Seconds <= 0 || evs[i].Retries == 0 {
			t.Errorf("pre-trip event %d should be a full storm: %+v", i, evs[i])
		}
	}
	last := evs[2]
	if !last.Mitigated || last.Seconds != 0 || last.Retries != 0 {
		t.Errorf("quarantined write not mitigated: %+v", last)
	}
	if last.FailoverTarget != 1 {
		t.Errorf("quarantined write failed over to %d, want 1", last.FailoverTarget)
	}

	st := eng.Stats()
	if st == nil || st.QuarantinedTargets != 1 {
		t.Errorf("stats = %+v, want 1 quarantined target", st)
	}

	// Mitigated events must not feed the breaker counters: re-observing
	// with the mitigated event in the stream keeps exactly one trip
	// anchored at the same event.
	eng.Observe(fs)
	if avoid2 := eng.AvoidTargets(); !avoid2[0] || len(avoid2) != 1 {
		t.Errorf("breaker state drifted on re-observe: %v", avoid2)
	}
}

// TestBreakerRebuildDeterministic: the breaker map is a pure function of
// the stream — observing once or many times, the open-until anchor is
// the tripping event's start plus the cooldown, never the observation
// time.
func TestBreakerRebuildDeterministic(t *testing.T) {
	fs := faultedFS(t, outagePlan())
	engA := ForFileSystem(&Policy{Quarantine: true}, fs, 2)
	for step := 0; step < 2; step++ {
		fs.BeginBurst(2)
		if _, err := fs.WriteSize(0, "f", 1<<20, iosim.Labels{Step: step}); err != nil {
			t.Fatal(err)
		}
		fs.EndBurst()
	}
	// engA observed nothing yet; observe 5 times vs. a fresh engine's 1.
	for i := 0; i < 5; i++ {
		engA.Observe(fs)
	}
	engB := ForFileSystem(&Policy{Quarantine: true}, fs, 2)
	engB.Observe(fs)
	a, b := engA.AvoidTargets(), engB.AvoidTargets()
	if len(a) != len(b) || !a[0] || !b[0] {
		t.Errorf("observation cadence changed the breaker set: %v vs %v", a, b)
	}
}

// TestShedStreak: degraded-mode output sheds under pressure but never
// two plots in a row (default streak cap 1), and a written plot re-arms
// the shed.
func TestShedStreak(t *testing.T) {
	fs := faultedFS(t, outagePlan())
	eng := ForFileSystem(&Policy{DegradedOutput: true}, fs, 2)
	// A storm makes rank 0's timeline nearly all fault time: pressure ≈ 1.
	fs.BeginBurst(2)
	if _, err := fs.WriteSize(0, "a", 1<<20, iosim.Labels{Step: 0}); err != nil {
		t.Fatal(err)
	}
	fs.EndBurst()

	if !eng.ShedPlot(fs, 500) {
		t.Fatal("no shed under storm pressure")
	}
	if eng.ShedPlot(fs, 500) {
		t.Fatal("second consecutive shed exceeded the streak cap")
	}
	// Writing a plot resets the streak; pressure is unchanged (no new
	// fault time, no clock movement), so the next plot sheds again.
	eng.BurstWritten(fs, eng.Clock(fs), false)
	if !eng.ShedPlot(fs, 700) {
		t.Fatal("streak did not re-arm after a written plot")
	}
	st := eng.Stats()
	if st.ShedBursts != 2 || st.ShedBytes != 1200 {
		t.Errorf("shed stats = %+v, want 2 bursts / 1200 bytes", st)
	}
}

// TestAdaptiveCheckpointCadence: no retiming before evidence (no
// interrupts observed, no burst walls), then due once the Young/Daly
// interval elapses; the MinCheckpointSeconds floor holds it back.
func TestAdaptiveCheckpointCadence(t *testing.T) {
	plan := faults.Plan{MTBFSeconds: 1, Seed: 3}
	fs := iosim.New(iosim.DefaultConfig(), "")
	eng := New(&Policy{AdaptiveCheckpoint: true}, plan, 1, nil)
	if !eng.Adaptive() {
		t.Fatal("adaptive engine not adaptive")
	}

	if eng.CheckpointDue(fs) {
		t.Fatal("checkpoint due with zero evidence")
	}
	// Advance to t=5: the seeded 1s-MTBF process has interrupts by then,
	// so the online estimate is live — but no burst wall yet.
	fs.AdvanceClock(0, 5)
	if eng.CheckpointDue(fs) {
		t.Fatal("checkpoint due without an observed burst wall")
	}
	eng.BurstWritten(fs, 4, false) // 1s plot-burst wall: C is now observed
	// 5s at risk since run start >> sqrt(2·1·MTBF): due. A plot burst
	// must NOT have re-anchored the interval.
	if !eng.CheckpointDue(fs) {
		t.Fatal("checkpoint not due despite 5s at risk")
	}
	eng.BurstWritten(fs, 5, true) // the checkpoint re-anchors at t=5
	if eng.CheckpointDue(fs) {
		t.Fatal("checkpoint due immediately after a checkpoint")
	}
	fs.AdvanceClock(0, 5) // t=10: 5s since the checkpoint anchor
	if !eng.CheckpointDue(fs) {
		t.Fatal("checkpoint never came due again")
	}
	st := eng.Stats()
	if st.AdaptiveCheckpoints != 1 {
		t.Errorf("adaptive checkpoints = %d, want 1", st.AdaptiveCheckpoints)
	}
	if st.ObservedMTBFSeconds <= 0 {
		t.Errorf("online MTBF estimate = %g, want > 0", st.ObservedMTBFSeconds)
	}

	// The floor: an enormous MinCheckpointSeconds suppresses the cadence.
	floored := New(&Policy{AdaptiveCheckpoint: true, MinCheckpointSeconds: 1e6}, plan, 1, nil)
	floored.BurstWritten(fs, 9, false)
	fs.AdvanceClock(0, 50)
	if floored.CheckpointDue(fs) {
		t.Error("floored cadence still triggered")
	}
}

// TestCheckpointCounterGated: a quarantine-only engine must not count
// fixed-cadence checkpoints as adaptive ones.
func TestCheckpointCounterGated(t *testing.T) {
	fs := faultedFS(t, outagePlan())
	eng := ForFileSystem(&Policy{Quarantine: true}, fs, 2)
	eng.BurstWritten(fs, 0, true)
	if st := eng.Stats(); st.AdaptiveCheckpoints != 0 {
		t.Errorf("quarantine-only engine counted %d adaptive checkpoints", st.AdaptiveCheckpoints)
	}
	if eng.Adaptive() {
		t.Error("quarantine-only engine claims the checkpoint cadence")
	}
}

// TestNodeFactorAndScaleLoads: active nic-degrade windows multiply into
// the node factor, and ScaleLoads inflates the affected ranks' loads.
func TestNodeFactorAndScaleLoads(t *testing.T) {
	plan := faults.Plan{Events: []faults.Event{
		{Kind: faults.KindNICDegrade, Start: 0, End: 100, Node: 0, Factor: 0.5},
		{Kind: faults.KindNICDegrade, Start: 200, End: 300, Node: 1, Factor: 0.1},
	}}
	fs := iosim.New(iosim.DefaultConfig(), "")
	eng := New(&Policy{Quarantine: true}, plan, 4, nil)
	fs.AdvanceClock(0, 10) // inside node 0's window, outside node 1's
	eng.Observe(fs)
	if f := eng.NodeFactor(0); f != 0.5 {
		t.Errorf("node 0 factor = %g, want 0.5", f)
	}
	if f := eng.NodeFactor(1); f != 1 {
		t.Errorf("node 1 factor = %g, want 1 (window not yet open)", f)
	}

	topo := iosim.Topology{Nodes: 2, RanksPerNode: 2, Targets: 2}
	// Ranks 0,1 on node 0 (degraded), ranks 2,3 on node 1 (healthy).
	owner := []int{0, 2}
	loads := []int64{1000, 1000}
	eng.ScaleLoads(topo, 4, owner, loads)
	if loads[0] != 2000 {
		t.Errorf("degraded-node load = %d, want 2000 (inflated by 1/0.5)", loads[0])
	}
	if loads[1] != 1000 {
		t.Errorf("healthy-node load = %d, want 1000", loads[1])
	}
}
