package resilience

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParse hammers the mitigation-policy decoder: no input may panic,
// and any accepted policy must be a marshal fixpoint so saved policies
// reload identically.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"adaptive_checkpoint": true, "min_checkpoint_seconds": 30}`))
	f.Add([]byte(`{"quarantine": true, "quarantine_threshold": 2, "quarantine_cooldown": 600}`))
	f.Add([]byte(`{"degraded_output": true, "shed_pressure": 0.5}`))
	f.Add([]byte(`{"treshold": 1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"shed_pressure": 2}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		m1, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted policy does not marshal: %v", err)
		}
		p2, err := Parse(m1)
		if err != nil {
			t.Fatalf("marshal of accepted policy does not reparse: %v\npolicy: %s", err, m1)
		}
		m2, err := json.Marshal(p2)
		if err != nil {
			t.Fatalf("reparsed policy does not marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("parse/marshal not a fixpoint:\nfirst:  %s\nsecond: %s", m1, m2)
		}
	})
}
