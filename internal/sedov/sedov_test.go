package sedov

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.Gamma = 1.0
	if bad.Validate() == nil {
		t.Error("gamma=1 accepted")
	}
	bad = Default()
	bad.E = -1
	if bad.Validate() == nil {
		t.Error("negative energy accepted")
	}
}

func TestShockRadiusScaling(t *testing.T) {
	p := Default()
	// R ∝ t^(1/2) for cylindrical symmetry: doubling t scales R by sqrt(2).
	r1 := p.ShockRadius(0.01)
	r2 := p.ShockRadius(0.02)
	if math.Abs(r2/r1-math.Sqrt2) > 1e-12 {
		t.Errorf("ratio = %g, want sqrt(2)", r2/r1)
	}
	// R ∝ E^(1/4).
	p16 := p
	p16.E = 16
	if math.Abs(p16.ShockRadius(0.01)/r1-2) > 1e-12 {
		t.Errorf("E scaling = %g, want 2", p16.ShockRadius(0.01)/r1)
	}
	// R ∝ ρ₀^(-1/4).
	pd := p
	pd.Rho0 = 16
	if math.Abs(pd.ShockRadius(0.01)/r1-0.5) > 1e-12 {
		t.Errorf("rho scaling = %g, want 0.5", pd.ShockRadius(0.01)/r1)
	}
	if p.ShockRadius(0) != 0 || p.ShockRadius(-1) != 0 {
		t.Error("radius at t<=0 should be 0")
	}
}

func TestXi0Reasonable(t *testing.T) {
	// The thin-shell estimate should land within ~20% of the exact Sedov
	// constant for γ=1.4 cylindrical (ξ₀ ≈ 1.0).
	xi := Default().Xi0()
	if xi < 0.8 || xi > 1.2 {
		t.Errorf("Xi0 = %g, expected within [0.8, 1.2]", xi)
	}
}

func TestTimeAtRadiusInverts(t *testing.T) {
	p := Default()
	for _, tt := range []float64{1e-4, 1e-3, 0.05, 0.1} {
		r := p.ShockRadius(tt)
		back := p.TimeAtRadius(r)
		if math.Abs(back-tt)/tt > 1e-12 {
			t.Errorf("TimeAtRadius(ShockRadius(%g)) = %g", tt, back)
		}
	}
	if p.TimeAtRadius(0) != 0 {
		t.Error("TimeAtRadius(0) should be 0")
	}
}

func TestShockSpeedConsistent(t *testing.T) {
	p := Default()
	tt := 0.02
	// Finite-difference check of dR/dt.
	h := 1e-8
	fd := (p.ShockRadius(tt+h) - p.ShockRadius(tt-h)) / (2 * h)
	if math.Abs(p.ShockSpeed(tt)-fd)/fd > 1e-5 {
		t.Errorf("ShockSpeed = %g, fd = %g", p.ShockSpeed(tt), fd)
	}
	if !math.IsInf(p.ShockSpeed(0), 1) {
		t.Error("speed at t=0 should be +Inf")
	}
}

func TestPostShockStrongLimits(t *testing.T) {
	p := Default()
	us := 10.0
	rho, u, pres := p.PostShock(us)
	// Density jump (γ+1)/(γ-1) = 6 for γ=1.4.
	if math.Abs(rho-6) > 1e-12 {
		t.Errorf("post-shock density = %g, want 6", rho)
	}
	if math.Abs(u-2*us/2.4) > 1e-12 {
		t.Errorf("post-shock velocity = %g", u)
	}
	if math.Abs(pres-2*us*us/2.4) > 1e-12 {
		t.Errorf("post-shock pressure = %g", pres)
	}
	// Post-shock state must be supersonic relative to ambient.
	if u < p.SoundSpeedAmbient() {
		t.Error("post-shock flow should exceed ambient sound speed for a strong shock")
	}
}

func TestFrontAnnulus(t *testing.T) {
	p := Default()
	in, out := p.FrontAnnulus(0.02, 0.25, 0.1)
	r := p.ShockRadius(0.02)
	if math.Abs(in-0.75*r) > 1e-12 || math.Abs(out-1.1*r) > 1e-12 {
		t.Errorf("annulus = [%g, %g], r = %g", in, out, r)
	}
	// Very wide trailing band clamps at zero.
	in, _ = p.FrontAnnulus(0.02, 2.0, 0.1)
	if in != 0 {
		t.Errorf("inner radius = %g, want 0", in)
	}
}

func TestAmbientSoundSpeed(t *testing.T) {
	p := Default()
	want := math.Sqrt(1.4 * 1e-5)
	if math.Abs(p.SoundSpeedAmbient()-want) > 1e-15 {
		t.Errorf("c0 = %g, want %g", p.SoundSpeedAmbient(), want)
	}
}
