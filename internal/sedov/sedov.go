// Package sedov provides the analytic Sedov–Taylor blast-wave relations
// for the 2D cylindrical case the paper uses as its baseline problem
// ("Sedov 2D cylinder in Cartesian coordinates").
//
// Two things are exact and used in tests: the similarity scaling of the
// shock radius, R(t) ∝ (E t²/ρ₀)^¼ for cylindrical symmetry, and the
// strong-shock Rankine–Hugoniot jump conditions. The dimensionless
// constant ξ₀ multiplying the similarity radius is computed with the
// thin-shell energy-balance approximation (documented accuracy ~10-15%
// versus the exact Sedov integral), which is sufficient for its role here:
// driving refinement tagging in the Summit-scale surrogate pipeline, where
// only the front's location and growth rate shape the workload.
package sedov

import (
	"fmt"
	"math"
)

// Params describes a cylindrical blast: deposited energy per unit length
// E, ambient density Rho0, ambient pressure P0, and the gas gamma.
type Params struct {
	E     float64
	Rho0  float64
	P0    float64
	Gamma float64
}

// Default mirrors the Castro Sedov setup in problem units: unit energy,
// unit ambient density, tiny ambient pressure, ideal diatomic gas.
func Default() Params {
	return Params{E: 1.0, Rho0: 1.0, P0: 1e-5, Gamma: 1.4}
}

// Validate checks physical sanity.
func (p Params) Validate() error {
	if p.E <= 0 || p.Rho0 <= 0 || p.Gamma <= 1 {
		return fmt.Errorf("sedov: invalid params %+v", p)
	}
	return nil
}

// Xi0 is the thin-shell estimate of the similarity constant for
// cylindrical (j=2) geometry: the swept mass rides in a shell at the
// post-shock velocity with the post-shock pressure filling the interior.
func (p Params) Xi0() float64 {
	g := p.Gamma
	// Kinetic term 2/(γ+1)² plus internal term 2/((γ+1)(γ-1)) of the
	// swept-mass energy balance E = a·π·ρ₀·R²·Ṙ².
	a := 2/((g+1)*(g+1)) + 2/((g+1)*(g-1))
	return math.Pow(4/(math.Pi*a), 0.25)
}

// ShockRadius returns R(t) = ξ₀ (E t² / ρ₀)^¼.
func (p Params) ShockRadius(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return p.Xi0() * math.Pow(p.E*t*t/p.Rho0, 0.25)
}

// ShockSpeed returns dR/dt = R / (2t) (from the t^½ similarity law).
func (p Params) ShockSpeed(t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return p.ShockRadius(t) / (2 * t)
}

// TimeAtRadius inverts ShockRadius: the time at which the front reaches r.
func (p Params) TimeAtRadius(r float64) float64 {
	if r <= 0 {
		return 0
	}
	x := r / p.Xi0()
	return math.Sqrt(x * x * x * x * p.Rho0 / p.E)
}

// PostShock returns the strong-shock Rankine–Hugoniot state immediately
// behind a shock moving at speed us into the ambient gas: density,
// material speed, and pressure.
func (p Params) PostShock(us float64) (rho, u, pres float64) {
	g := p.Gamma
	rho = p.Rho0 * (g + 1) / (g - 1)
	u = 2 * us / (g + 1)
	pres = 2 * p.Rho0 * us * us / (g + 1)
	return
}

// SoundSpeedAmbient returns the ambient sound speed sqrt(γ p₀ / ρ₀).
func (p Params) SoundSpeedAmbient() float64 {
	return math.Sqrt(p.Gamma * p.P0 / p.Rho0)
}

// FrontAnnulus describes the radial band [RInner, ROuter] the surrogate
// tagging pipeline marks for refinement at time t: the shock front plus a
// trailing band of widthBehind and a leading band of widthAhead (both in
// units of the shock radius).
func (p Params) FrontAnnulus(t, widthBehind, widthAhead float64) (rInner, rOuter float64) {
	r := p.ShockRadius(t)
	rInner = r * (1 - widthBehind)
	if rInner < 0 {
		rInner = 0
	}
	rOuter = r * (1 + widthAhead)
	return
}
