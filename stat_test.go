package amrproxyio_test

import "os"

// statFile returns a file's on-disk size.
func statFile(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
