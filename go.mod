module amrproxyio

go 1.22
