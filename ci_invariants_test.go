// CI-shape invariants: the workflow file is code the compiler never
// sees, so these tests pin the properties the analyzer-suite PR
// established — the race gate covers the whole module (no enumerated
// package list to rot), the amrio-vet gate exists and runs through the
// real vet protocol, and the third-party gates stay version-pinned.
package amrproxyio_test

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func readCI(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(".github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("reading CI workflow: %v", err)
	}
	return string(data)
}

// TestRaceGateCoversWholeModule: the -race invocation must be ./...;
// an enumerated package list silently loses every new package.
func TestRaceGateCoversWholeModule(t *testing.T) {
	ci := readCI(t)
	re := regexp.MustCompile(`(?m)^\s*run:\s*(go test -race .*)$`)
	matches := re.FindAllStringSubmatch(ci, -1)
	if len(matches) == 0 {
		t.Fatal("CI has no `go test -race` gate")
	}
	for _, m := range matches {
		cmd := strings.TrimSpace(m[1])
		if cmd != "go test -race ./..." {
			t.Errorf("race gate is %q; it must be exactly `go test -race ./...` so new packages cannot drift out of race coverage", cmd)
		}
	}
}

// TestAmrioVetGatePresent: the analyzer suite must run as a blocking
// vet-protocol gate over the whole tree.
func TestAmrioVetGatePresent(t *testing.T) {
	ci := readCI(t)
	if !strings.Contains(ci, "go build -o /tmp/amrio-vet ./cmd/amrio-vet") {
		t.Error("CI does not build cmd/amrio-vet")
	}
	if !strings.Contains(ci, "go vet -vettool=/tmp/amrio-vet ./...") {
		t.Error("CI does not run the amrio-vet suite via `go vet -vettool` over ./...")
	}
}

// TestThirdPartyGatesArePinned: staticcheck and govulncheck must be
// installed at explicit versions, never @latest.
func TestThirdPartyGatesArePinned(t *testing.T) {
	ci := readCI(t)
	for _, tool := range []string{
		"honnef.co/go/tools/cmd/staticcheck",
		"golang.org/x/vuln/cmd/govulncheck",
	} {
		re := regexp.MustCompile(regexp.QuoteMeta(tool) + `@(\S+)`)
		m := re.FindStringSubmatch(ci)
		if m == nil {
			t.Errorf("CI does not install %s", tool)
			continue
		}
		if m[1] == "latest" || m[1] == "master" {
			t.Errorf("%s is installed @%s; pin an explicit version", tool, m[1])
		}
	}
}

// TestFuzzSmokePresent: each fuzz target gets a short CI budget.
func TestFuzzSmokePresent(t *testing.T) {
	ci := readCI(t)
	for _, want := range []string{
		"-fuzz=FuzzParse -fuzztime=20s -run '^$' ./internal/faults/",
		"-fuzz=FuzzParse -fuzztime=20s -run '^$' ./internal/resilience/",
		"-fuzz=FuzzParseAggregation -fuzztime=20s -run '^$' ./internal/iosim/",
	} {
		if !strings.Contains(ci, want) {
			t.Errorf("CI fuzz smoke missing %q", want)
		}
	}
}
