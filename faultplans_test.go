package amrproxyio_test

import (
	"path/filepath"
	"testing"

	"amrproxyio/internal/faults"
)

// TestExampleFaultPlansParse smoke-checks every plan under
// examples/faultplans/: each must load through the same faults.Load the
// CLIs use, validate, and actually inject something (a zero plan in the
// examples directory would be a silent doc rot).
func TestExampleFaultPlansParse(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "faultplans", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 example fault plans, found %d", len(paths))
	}
	for _, p := range paths {
		plan, err := faults.Load(p)
		if err != nil {
			t.Errorf("faults.Load(%q): %v", p, err)
			continue
		}
		if plan.Zero() {
			t.Errorf("plan %q parses but injects nothing", p)
		}
	}
}
