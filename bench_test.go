// Benchmark harness: one bench per table and figure of the paper's
// evaluation section (see DESIGN.md's experiment index), plus ablation
// benches for the design choices DESIGN.md calls out. Paper-facing
// quantities are emitted through b.ReportMetric; EXPERIMENTS.md records
// the paper-vs-measured comparison for each exhibit.
//
// Run everything:
//
//	go test -bench=. -benchmem .
package amrproxyio_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/hydro"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/sedov"
	"amrproxyio/internal/sim"
	"amrproxyio/internal/stats"
	"amrproxyio/internal/surrogate"
)

func benchFS() *iosim.FileSystem {
	cfg := iosim.DefaultConfig()
	cfg.JitterSigma = 0
	return iosim.New(cfg, "")
}

// pivotFixture caches the scaled case4 pivot matrix (cfl x max_level) so
// the analysis benches don't re-run hydro per iteration.
var pivotFixture struct {
	once    sync.Once
	results []campaign.Result
	err     error
}

func pivotResults(b *testing.B) []campaign.Result {
	pivotFixture.once.Do(func() {
		for _, v := range []struct {
			cfl float64
			ml  int
		}{{0.3, 2}, {0.3, 4}, {0.6, 2}, {0.6, 4}} {
			c := campaign.Case4Variant(v.cfl, v.ml).Scaled(8)
			res, err := campaign.Run(c, benchFS())
			if err != nil {
				pivotFixture.err = err
				return
			}
			pivotFixture.results = append(pivotFixture.results, res)
		}
	})
	if pivotFixture.err != nil {
		b.Fatal(pivotFixture.err)
	}
	return pivotFixture.results
}

// --- Table I -------------------------------------------------------------

func BenchmarkTableI_InputParsing(b *testing.B) {
	listing2 := inputs.DefaultCastroInputs().ToFile().Encode()
	b.SetBytes(int64(len(listing2)))
	for i := 0; i < b.N; i++ {
		f, err := inputs.ParseString(listing2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inputs.FromFile(f); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II ------------------------------------------------------------

func BenchmarkTableII_MACSioArgs(b *testing.B) {
	args := strings.Fields("--interface miftmpl --parallel_file_mode MIF 32 " +
		"--num_dumps 21 --part_size 1550000 --avg_num_parts 1 --vars_per_part 1 " +
		"--compute_time 0.5 --meta_size 1024 --dataset_growth 1.013075 --nprocs 32")
	for i := 0; i < b.N; i++ {
		if _, err := macsio.ParseArgs(args); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III -----------------------------------------------------------

// BenchmarkTableIII_Campaign executes the full 47-case quick campaign and
// reports its aggregate output volume. One iteration is the whole sweep.
func BenchmarkTableIII_Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var total int64
		var plots int
		for _, c := range campaign.QuickCampaign() {
			res, err := campaign.Run(c, benchFS())
			if err != nil {
				b.Fatalf("%s: %v", c.Name, err)
			}
			total += res.TotalBytes()
			plots += res.NPlots
		}
		b.ReportMetric(float64(total), "campaign-bytes")
		b.ReportMetric(float64(plots), "plot-events")
	}
}

// --- Fig. 2 --------------------------------------------------------------

func BenchmarkFig2_PlotfileStructure(b *testing.B) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{32, 32}
	cfg.MaxLevel = 2
	cfg.MaxStep = 0 // just the initial plot
	cfg.PlotInt = 1
	cfg.NProcs = 4
	cfg.MaxGridSize = 16
	for i := 0; i < b.N; i++ {
		fs := benchFS()
		s, err := sim.New(cfg, sim.DefaultOptions(), fs)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.WritePlot(); err != nil {
			b.Fatal(err)
		}
		// Fig. 2 invariants: Header, per-level Cell_H, per-task Cell_D.
		var headers, cellH, cellD int
		for _, r := range fs.Ledger() {
			switch {
			case strings.HasSuffix(r.Path, "/Header"):
				headers++
			case strings.HasSuffix(r.Path, "/Cell_H"):
				cellH++
			case strings.Contains(r.Path, "/Cell_D_"):
				cellD++
			}
		}
		if headers != 1 || cellH < 1 || cellD < 1 {
			b.Fatalf("structure wrong: %d headers, %d Cell_H, %d Cell_D", headers, cellH, cellD)
		}
		b.ReportMetric(float64(cellD), "data-files")
	}
}

// --- Fig. 3 --------------------------------------------------------------

func BenchmarkFig3_MACSioLayout(b *testing.B) {
	cfg := macsio.DefaultConfig()
	cfg.NProcs = 8
	cfg.NumDumps = 4
	cfg.PartSize = 8192
	cfg.SizeOnly = true
	for i := 0; i < b.N; i++ {
		fs := benchFS()
		if _, err := macsio.Run(fs, cfg); err != nil {
			b.Fatal(err)
		}
		var data, root int
		for _, r := range fs.Ledger() {
			if strings.Contains(r.Path, "root") {
				root++
			} else {
				data++
			}
		}
		if data != 8*4 || root != 4 {
			b.Fatalf("layout wrong: %d data, %d root", data, root)
		}
	}
}

// --- Fig. 4 --------------------------------------------------------------

// BenchmarkFig4_SedovSolution advances the blast and reports the peak Mach
// number and the refined-region tracking of the analytic shock radius.
func BenchmarkFig4_SedovSolution(b *testing.B) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{64, 64}
	cfg.MaxLevel = 2
	cfg.MaxStep = 200
	cfg.PlotInt = 0
	cfg.NProcs = 4
	cfg.MaxGridSize = 32
	for i := 0; i < b.N; i++ {
		s, err := sim.New(cfg, sim.DefaultOptions(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		spec := s.PlotSpec()
		mach := spec.Levels[len(spec.Levels)-1].State.Max(7)
		b.ReportMetric(mach, "peak-mach")
		b.ReportMetric(sedov.Default().ShockRadius(s.Time), "analytic-shock-radius")
		b.ReportMetric(float64(s.Levels[s.FinestLevel()].BA.NumPts()), "finest-cells")
	}
}

// --- Fig. 5 --------------------------------------------------------------

// BenchmarkFig5_CumulativeOutput runs a size/level sweep and reports the
// non-linearity: the ratio of the final cumulative slope to the initial
// slope (1.0 = perfectly linear; the paper's refined runs exceed it).
func BenchmarkFig5_CumulativeOutput(b *testing.B) {
	cases := []campaign.Case{
		{Name: "f5_small_l2", NCell: 32, MaxLevel: 2, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 2, Engine: campaign.EngineHydro},
		{Name: "f5_mid_l2", NCell: 64, MaxLevel: 2, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 4, Engine: campaign.EngineHydro},
		{Name: "f5_mid_l3", NCell: 64, MaxLevel: 3, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 4, Engine: campaign.EngineHydro},
		{Name: "f5_big_l2", NCell: 2048, MaxLevel: 2, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 16, Engine: campaign.EngineSurrogate},
	}
	for i := 0; i < b.N; i++ {
		var maxNonlin float64
		for _, c := range cases {
			res, err := campaign.Run(c, benchFS())
			if err != nil {
				b.Fatal(err)
			}
			xs, ys := core.CumulativeXY(res.Records, int64(c.NCell)*int64(c.NCell))
			if len(xs) >= 3 {
				first := ys[0] / xs[0]
				last := (ys[len(ys)-1] - ys[len(ys)-2]) / (xs[1] - xs[0])
				if nl := last / first; nl > maxNonlin {
					maxNonlin = nl
				}
			}
		}
		b.ReportMetric(maxNonlin, "max-slope-ratio")
	}
}

// --- Fig. 6 --------------------------------------------------------------

// BenchmarkFig6_CFLLevelDependency reproduces the pivot matrix and reports
// the paper's headline: max_level affects cumulative output more than CFL.
func BenchmarkFig6_CFLLevelDependency(b *testing.B) {
	results := pivotResults(b)
	totals := map[string]float64{}
	for _, r := range results {
		key := benchKey(r.Case.CFL, r.Case.MaxLevel)
		totals[key] = float64(r.TotalBytes())
	}
	for i := 0; i < b.N; i++ {
		levelEffect := totals[benchKey(0.3, 4)] / totals[benchKey(0.3, 2)]
		cflEffect := totals[benchKey(0.6, 2)] / totals[benchKey(0.3, 2)]
		if levelEffect <= cflEffect {
			b.Fatalf("paper shape violated: level effect %.3f <= cfl effect %.3f", levelEffect, cflEffect)
		}
		b.ReportMetric(levelEffect, "level-effect")
		b.ReportMetric(cflEffect, "cfl-effect")
	}
}

func benchKey(cfl float64, ml int) string {
	return strings.Join([]string{string(rune('0' + int(cfl*10))), string(rune('0' + ml))}, "_")
}

// --- Fig. 7 --------------------------------------------------------------

// BenchmarkFig7_PerLevelOutput reports L0 flatness (max/min per-step L0
// bytes, paper: ~1) and the growth of the refined levels.
func BenchmarkFig7_PerLevelOutput(b *testing.B) {
	results := pivotResults(b)
	r := results[3] // cfl 0.6, maxl 4
	for i := 0; i < b.N; i++ {
		_, byLevel := core.PerLevelPerStep(r.Records)
		l0 := byLevel[0]
		mn, mx := l0[0], l0[0]
		for _, v := range l0 {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		b.ReportMetric(float64(mx)/float64(mn), "L0-flatness")
		// The finest level carries the physics-driven growth (the shock
		// region it covers expands with the blast).
		finest := len(byLevel) - 1
		if series := byLevel[finest]; len(series) > 1 && series[0] > 0 {
			growth := float64(series[len(series)-1]) / float64(series[0])
			if growth <= 1.0 {
				b.Fatalf("finest level L%d did not grow: %g", finest, growth)
			}
			b.ReportMetric(growth, "finest-level-growth")
		}
	}
}

// --- Fig. 8 --------------------------------------------------------------

// BenchmarkFig8_PerTaskDistribution runs the case27 analogue and reports
// the per-task load imbalance (max/mean) at the refined levels.
func BenchmarkFig8_PerTaskDistribution(b *testing.B) {
	// Case27 at its paper scale (1024^2, 64 ranks) on the surrogate, with
	// the front advanced past the spin-up so many ranks own refined data;
	// 5 plot events, as the paper's Fig. 8 shows.
	c := campaign.Case27()
	c.MaxStep = 600
	c.PlotInt = 120
	c.Engine = campaign.EngineSurrogate
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(c, benchFS())
		if err != nil {
			b.Fatal(err)
		}
		_, byTask := core.PerTaskPerStep(res.Records, 1, c.NProcs)
		var lastStep []float64
		for _, series := range byTask {
			if len(series) > 0 {
				lastStep = append(lastStep, float64(series[len(series)-1]))
			}
		}
		imb := stats.ImbalanceRatio(lastStep)
		if imb <= 1.0 {
			b.Fatalf("refined level unexpectedly balanced: %g", imb)
		}
		b.ReportMetric(imb, "L1-imbalance")
	}
}

// --- Fig. 9 --------------------------------------------------------------

// BenchmarkFig9_GrowthCalibration calibrates dataset_growth against the
// pivot's measured series and reports the fitted factor (paper: 1.013075
// for case4 cfl 0.4 maxl 4) and the evaluation count.
func BenchmarkFig9_GrowthCalibration(b *testing.B) {
	results := pivotResults(b)
	_, measured := core.PerStepBytes(results[1].Records) // cfl 0.3, maxl 4
	for i := 0; i < b.N; i++ {
		model, trace := core.CalibrateGrowth(measured, float64(measured[0]), 1.0, 1.05)
		if model.Growth < 1.0 || model.Growth > 1.05 {
			b.Fatalf("growth out of range: %g", model.Growth)
		}
		b.ReportMetric(model.Growth, "dataset-growth")
		b.ReportMetric(float64(len(trace)), "calibration-evals")
	}
}

// --- Fig. 10 -------------------------------------------------------------

// BenchmarkFig10_ModelComparison translates all four pivot variants and
// reports the worst model MAPE (paper: visually "close enough").
func BenchmarkFig10_ModelComparison(b *testing.B) {
	results := pivotResults(b)
	for i := 0; i < b.N; i++ {
		var worst float64
		var growthSpread [2]float64
		growthSpread[0] = 2
		for _, r := range results {
			tr, err := core.Translate(r.Case.Inputs(), r.Records, core.DefaultTranslateOptions())
			if err != nil {
				b.Fatal(err)
			}
			if tr.MAPE > worst {
				worst = tr.MAPE
			}
			if tr.Kernel.Growth < growthSpread[0] {
				growthSpread[0] = tr.Kernel.Growth
			}
			if tr.Kernel.Growth > growthSpread[1] {
				growthSpread[1] = tr.Kernel.Growth
			}
		}
		if worst > 25 {
			b.Fatalf("model MAPE %.1f%% too large for the paper's 'close enough' claim", worst)
		}
		b.ReportMetric(worst, "worst-MAPE-pct")
		b.ReportMetric(growthSpread[0], "growth-min")
		b.ReportMetric(growthSpread[1], "growth-max")
	}
}

// --- Fig. 11 -------------------------------------------------------------

// BenchmarkFig11_LargeScale runs the 8192^2 surrogate and compares the
// kernel model at scale; the relative non-linearity shrinks (L0
// dominates), matching the paper.
func BenchmarkFig11_LargeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.LargeCase(), benchFS())
		if err != nil {
			b.Fatal(err)
		}
		tr, err := core.Translate(campaign.LargeCase().Inputs(), res.Records, core.DefaultTranslateOptions())
		if err != nil {
			b.Fatal(err)
		}
		_, perStep := core.PerStepBytes(res.Records)
		meas := make([]float64, len(perStep))
		for k, v := range perStep {
			meas[k] = float64(v)
		}
		mape := stats.MAPE(meas, tr.Kernel.PredictSeries(len(meas)))
		b.ReportMetric(mape, "kernel-MAPE-pct")
		b.ReportMetric(float64(res.TotalBytes()), "total-bytes")
		// Non-linearity at scale is tiny but non-zero: the paper's Fig. 11
		// y-axis spans ~0.03% (1.8410e10..1.8416e10). Report the per-step
		// variation in parts per million; it must be small yet positive
		// (the late regrid "jump").
		mn, mx := meas[0], meas[0]
		for _, v := range meas {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		ppm := (mx - mn) / mn * 1e6
		if ppm <= 0 {
			b.Fatal("large case perfectly flat: regrid jumps missing")
		}
		if ppm > 50000 { // > 5%: L0 should dominate at this scale
			b.Fatalf("large case variation %.0f ppm too large", ppm)
		}
		b.ReportMetric(ppm, "step-variation-ppm")
	}
}

// --- Listing 1 / Eq. 3 ---------------------------------------------------

func BenchmarkListing1_Translation(b *testing.B) {
	results := pivotResults(b)
	r := results[3]
	cfg := r.Case.Inputs()
	for i := 0; i < b.N; i++ {
		tr, err := core.Translate(cfg, r.Records, core.DefaultTranslateOptions())
		if err != nil {
			b.Fatal(err)
		}
		line := tr.MACSio.CommandLine()
		if !strings.Contains(line, "--parallel_file_mode MIF") {
			b.Fatal("Listing 1 shape broken")
		}
	}
}

// BenchmarkEq3_PartSizeFit fits the Eq. 3 factor f across the pivot
// matrix and reports its range (paper: 23-25 with ~20 plot variables;
// this implementation writes 10, so f lands proportionally lower —
// see EXPERIMENTS.md).
func BenchmarkEq3_PartSizeFit(b *testing.B) {
	results := pivotResults(b)
	for i := 0; i < b.N; i++ {
		fmin, fmax := 1e9, 0.0
		for _, r := range results {
			_, perStep := core.PerStepBytes(r.Records)
			f := core.FitF(perStep[0], r.Case.NCell, r.Case.NCell, core.MatchNominal)
			if f < fmin {
				fmin = f
			}
			if f > fmax {
				fmax = f
			}
		}
		if fmin < 5 || fmax > 100 {
			b.Fatalf("f range [%.1f, %.1f] implausible", fmin, fmax)
		}
		b.ReportMetric(fmin, "f-min")
		b.ReportMetric(fmax, "f-max")
	}
}

// --- Ablations (design choices called out in DESIGN.md) -------------------

// BenchmarkAblationDistributionMapping compares per-task imbalance across
// the three decomposition strategies on the same hierarchy.
func BenchmarkAblationDistributionMapping(b *testing.B) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{512, 512}
	cfg.MaxLevel = 2
	cfg.NProcs = 32
	cfg.MaxGridSize = 64
	for i := 0; i < b.N; i++ {
		for _, strat := range []amr.DistStrategy{amr.DistRoundRobin, amr.DistKnapsack, amr.DistSFC} {
			opts := surrogate.DefaultOptions()
			opts.Dist = strat
			fs := benchFS()
			r, err := surrogate.New(cfg, opts, fs)
			if err != nil {
				b.Fatal(err)
			}
			// Advance to a developed front, regrid there, dump once.
			for k := 0; k < 250; k++ {
				r.Advance()
			}
			if err := r.Rebuild(); err != nil {
				b.Fatal(err)
			}
			if err := r.WritePlot(); err != nil {
				b.Fatal(err)
			}
			// Imbalance on the refined levels only: L0 is uniform by
			// construction and would mask the decomposition differences.
			perRank := map[int]int64{}
			for _, rec := range fs.Ledger() {
				if rec.Labels.Level >= 1 {
					perRank[rec.Rank] += rec.Bytes
				}
			}
			loads := make([]float64, cfg.NProcs)
			for rank, v := range perRank {
				loads[rank] = float64(v)
			}
			b.ReportMetric(stats.ImbalanceRatio(loads), "imbalance-"+strat.String())
		}
	}
}

// BenchmarkAblationClustering sweeps grid_eff and reports file counts and
// cells: higher efficiency targets mean more, smaller boxes.
func BenchmarkAblationClustering(b *testing.B) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{1024, 1024}
	cfg.MaxLevel = 2
	cfg.NProcs = 16
	cfg.MaxGridSize = 64
	for i := 0; i < b.N; i++ {
		var prevCells int64
		for _, eff := range []float64{0.5, 0.7, 0.9} {
			c := cfg
			c.GridEff = eff
			r, err := surrogate.New(c, surrogate.DefaultOptions(), nil)
			if err != nil {
				b.Fatal(err)
			}
			// Measure on a developed annular front, where clustering
			// efficiency actually matters (the initial disk is trivially
			// dense).
			for k := 0; k < 250; k++ {
				r.Advance()
			}
			if err := r.Rebuild(); err != nil {
				b.Fatal(err)
			}
			cells := r.BAs[len(r.BAs)-1].NumPts()
			boxes := r.BAs[len(r.BAs)-1].Len()
			b.ReportMetric(float64(boxes), "boxes-eff"+effTag(eff))
			b.ReportMetric(float64(cells), "cells-eff"+effTag(eff))
			if prevCells > 0 && cells > prevCells {
				b.Fatalf("higher grid_eff %g produced more cells (%d > %d)", eff, cells, prevCells)
			}
			prevCells = cells
		}
	}
}

func effTag(e float64) string {
	return string(rune('0' + int(e*10)))
}

// BenchmarkAblationFileMode compares MIF (N files per dump) against SIF
// (one shared file per dump) in the proxy.
func BenchmarkAblationFileMode(b *testing.B) {
	base := macsio.DefaultConfig()
	base.NProcs = 32
	base.NumDumps = 5
	base.PartSize = 100000
	base.SizeOnly = true
	for i := 0; i < b.N; i++ {
		for _, mode := range []macsio.FileMode{macsio.ModeMIF, macsio.ModeSIF} {
			cfg := base
			cfg.FileMode = mode
			fs := benchFS()
			if _, err := macsio.Run(fs, cfg); err != nil {
				b.Fatal(err)
			}
			files := map[string]bool{}
			for _, r := range fs.Ledger() {
				files[r.Path] = true
			}
			b.ReportMetric(float64(len(files)), "files-"+string(mode))
		}
	}
}

// BenchmarkAblationIOContention toggles the shared-bandwidth contention
// model and reports the burst wall-time ratio.
func BenchmarkAblationIOContention(b *testing.B) {
	mcfg := macsio.DefaultConfig()
	mcfg.NProcs = 64
	mcfg.NumDumps = 3
	mcfg.PartSize = 10 << 20
	mcfg.SizeOnly = true
	for i := 0; i < b.N; i++ {
		walls := map[bool]float64{}
		for _, contended := range []bool{false, true} {
			fsCfg := iosim.DefaultConfig()
			fsCfg.JitterSigma = 0
			if !contended {
				fsCfg.AggregateBandwidth = 1e18 // effectively infinite backend
			} else {
				fsCfg.AggregateBandwidth = 64e9 // constrained backend
			}
			fs := iosim.New(fsCfg, "")
			if _, err := macsio.Run(fs, mcfg); err != nil {
				b.Fatal(err)
			}
			stats := iosim.BurstStats(fs.Ledger())
			walls[contended] = stats[0].WallSeconds
		}
		ratio := walls[true] / walls[false]
		if ratio <= 1 {
			b.Fatalf("contention did not slow bursts: ratio %g", ratio)
		}
		b.ReportMetric(ratio, "contention-slowdown")
	}
}

// BenchmarkAblationCalibration compares the SSE golden-section calibration
// against the log-linear OLS alternative on the same measured series.
func BenchmarkAblationCalibration(b *testing.B) {
	results := pivotResults(b)
	_, measured := core.PerStepBytes(results[3].Records)
	target := make([]float64, len(measured))
	for i, v := range measured {
		target[i] = float64(v)
	}
	for i := 0; i < b.N; i++ {
		sseModel, _ := core.CalibrateGrowth(measured, float64(measured[0]), 1.0, 1.05)
		olsModel, err := core.CalibrateGrowthOLS(measured)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.MAPE(target, sseModel.PredictSeries(len(target))), "sse-MAPE")
		b.ReportMetric(stats.MAPE(target, olsModel.PredictSeries(len(target))), "ols-MAPE")
	}
}

// BenchmarkAblationReflux quantifies the coarse-fine flux correction: the
// composite-energy drift over 120 steps (past the init_shrink ramp, so
// real flux crosses the coarse-fine boundary) with and without refluxing.
func BenchmarkAblationReflux(b *testing.B) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{32, 32}
	cfg.MaxLevel = 2
	cfg.MaxGridSize = 16
	cfg.RegridInt = 0 // frozen hierarchy isolates the flux correction
	cfg.NProcs = 4
	cfg.StopTime = 10
	for i := 0; i < b.N; i++ {
		drift := map[bool]float64{}
		for _, reflux := range []bool{false, true} {
			opts := sim.DefaultOptions()
			opts.Reflux = reflux
			s, err := sim.New(cfg, opts, nil)
			if err != nil {
				b.Fatal(err)
			}
			e0 := hydro.TotalEnergy(s.Levels[0].State, s.Levels[0].Geom)
			for k := 0; k < 120; k++ {
				s.Advance()
			}
			e1 := hydro.TotalEnergy(s.Levels[0].State, s.Levels[0].Geom)
			d := e1 - e0
			if d < 0 {
				d = -d
			}
			drift[reflux] = d / e0
		}
		if drift[true] > drift[false] {
			b.Fatalf("reflux increased drift: %g vs %g", drift[true], drift[false])
		}
		if drift[false] < 1e-4 {
			b.Fatalf("no-reflux drift %g too small: boundary not exercised", drift[false])
		}
		b.ReportMetric(drift[false]*1e6, "drift-noreflux-ppm")
		b.ReportMetric(drift[true]*1e6, "drift-reflux-ppm")
	}
}

// --- end-to-end sanity ----------------------------------------------------

// BenchmarkPlotfileWrite measures the N-to-N writer itself (data path) on
// a realistic two-level hierarchy.
func BenchmarkPlotfileWrite(b *testing.B) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{128, 128}
	cfg.MaxLevel = 1
	cfg.MaxStep = 0
	cfg.PlotInt = 1
	cfg.NProcs = 8
	cfg.MaxGridSize = 32
	s, err := sim.New(cfg, sim.DefaultOptions(), benchFS())
	if err != nil {
		b.Fatal(err)
	}
	spec := s.PlotSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := benchFS()
		recs, err := plotfile.Write(fs, spec)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(plotfile.TotalBytes(recs))
	}
}

// BenchmarkCampaignExecutor compares the serial loop against the
// worker-pool executor on a 12-case slice of the quick campaign and
// reports the parallel speedup (acceptance: > 1 at parallelism >= 4 on a
// multicore host). Ledger identity between the two runs is asserted every
// iteration.
func BenchmarkCampaignExecutor(b *testing.B) {
	cases := campaign.QuickCampaign()[:12]
	newFS := func(campaign.Case) *iosim.FileSystem {
		cfg := iosim.DefaultConfig()
		cfg.JitterSigma = 0
		return iosim.New(cfg, "")
	}
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serial, err := campaign.RunAll(cases, 1, newFS)
		if err != nil {
			b.Fatal(err)
		}
		serialWall := time.Since(t0)

		t0 = time.Now()
		parallel, err := campaign.RunAll(cases, 4, newFS)
		if err != nil {
			b.Fatal(err)
		}
		parallelWall := time.Since(t0)

		for c := range cases {
			if len(serial[c].Records) != len(parallel[c].Records) {
				b.Fatalf("%s: ledger diverged under parallel execution", cases[c].Name)
			}
			for j := range serial[c].Records {
				if serial[c].Records[j] != parallel[c].Records[j] {
					b.Fatalf("%s: record %d diverged under parallel execution", cases[c].Name, j)
				}
			}
		}
		speedup := serialWall.Seconds() / parallelWall.Seconds()
		// Campaign cases are CPU-bound, so wall-clock speedup needs real
		// cores; on single-core hosts the executor can only tie the
		// serial loop. Gate where the hardware can express the win.
		if runtime.NumCPU() >= 4 && speedup <= 1.1 {
			b.Fatalf("parallel executor speedup %.2fx on %d cores, want > 1.1x", speedup, runtime.NumCPU())
		}
		b.ReportMetric(serialWall.Seconds(), "serial-s")
		b.ReportMetric(parallelWall.Seconds(), "parallel-s")
		b.ReportMetric(speedup, "speedup-x")
	}
}

// BenchmarkShardedFilesystem drives 64 concurrent rank goroutines through
// one FileSystem — the mpisim write pattern — measuring ledger-append
// throughput of the sharded hot path.
func BenchmarkShardedFilesystem(b *testing.B) {
	const ranks, writes = 64, 200
	for i := 0; i < b.N; i++ {
		fs := benchFS()
		fs.BeginBurst(ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for w := 0; w < writes; w++ {
					fs.WriteSize(rank, "plt/Cell_D", 1<<20, iosim.Labels{Step: w})
				}
			}(r)
		}
		wg.Wait()
		fs.EndBurst()
		if got := len(fs.Ledger()); got != ranks*writes {
			b.Fatalf("ledger len = %d", got)
		}
	}
	b.ReportMetric(float64(ranks*writes)*float64(b.N)/b.Elapsed().Seconds(), "writes/s")
}

// BenchmarkDistribute sweeps the three distribution strategies over a
// 1024-box level — the per-regrid cost of every placement experiment.
func BenchmarkDistribute(b *testing.B) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(1023, 1023))
	ba := amr.SingleBoxArray(dom, 32, 8) // 32x32 grid of boxes = 1024
	if ba.Len() != 1024 {
		b.Fatalf("setup: %d boxes", ba.Len())
	}
	for _, strat := range amr.DistStrategies() {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dm, err := amr.Distribute(ba, 64, strat)
				if err != nil {
					b.Fatal(err)
				}
				if len(dm.Owner) != 1024 {
					b.Fatal("bad mapping")
				}
			}
		})
	}
}

// BenchmarkHydroStep measures the solver's per-step cost on a 128^2 box.
func BenchmarkHydroStep(b *testing.B) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{128, 128}
	cfg.MaxLevel = 0
	cfg.PlotInt = 0
	cfg.NProcs = 4
	cfg.MaxGridSize = 64
	s, err := sim.New(cfg, sim.DefaultOptions(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(cfg.NCell[0]) * int64(cfg.NCell[1]) * hydro.NCons * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance()
	}
}

// --- Campaign service layer (streaming consumers + memoized executor) ---

// sweepCase builds one case of the service-layer sweep benches: a small
// surrogate case, with the index folded into ComputeSeconds so every
// case carries a distinct fingerprint (the memoized benches need 1000
// distinct cache entries, not 1000 hits on one).
func sweepCase(i, maxStep int) campaign.Case {
	return campaign.Case{
		Name:           fmt.Sprintf("sweep-%04d", i),
		NCell:          512,
		MaxLevel:       1,
		MaxStep:        maxStep,
		PlotInt:        2,
		CFL:            0.5,
		NProcs:         32,
		Nodes:          8,
		Engine:         campaign.EngineSurrogate,
		ComputeSeconds: float64(i) * 1e-4,
	}
}

// liveHeap forces a collection and returns the live heap above base.
// Callers sample while the per-case state (ledger or fold) is still
// reachable, so the delta is the case's peak retained footprint.
func liveHeap(base uint64) uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc <= base {
		return 0
	}
	return m.HeapAlloc - base
}

// BenchmarkCampaignLedgerPeakHeap contrasts the two reduction modes of
// the streaming subsystem on a step-heavy case: retention materializes
// the full ledger and reduces it batch-style (O(writes) live heap),
// streaming attaches a CharacterizeFold and never holds the records
// (O(steps x ranks) aggregate state). The peak-heap-bytes metrics are
// the Design 10 memory claim; ledger-records sizes the retained side.
func BenchmarkCampaignLedgerPeakHeap(b *testing.B) {
	const maxStep = 240 // ~10k records: the ledger dominates the heap
	for _, mode := range []string{"retention", "streaming"} {
		b.Run(mode, func(b *testing.B) {
			runtime.GC()
			var base runtime.MemStats
			runtime.ReadMemStats(&base)
			var peak uint64
			var records int
			for i := 0; i < b.N; i++ {
				c := sweepCase(i, maxStep)
				cfg := c.FSConfig(false)
				cfg.JitterSigma = 0
				fs := iosim.New(cfg, "")
				var fold *iosim.CharacterizeFold
				if mode == "streaming" {
					fold = iosim.NewCharacterizeFold()
					fs.Attach(fold)
				}
				if _, err := campaign.Run(c, fs); err != nil {
					b.Fatal(err)
				}
				var ledger []iosim.WriteRecord
				var prof iosim.Characterization
				if mode == "streaming" {
					fs.FlushConsumers()
					prof = fold.Profile()
				} else {
					ledger = fs.Ledger()
					records = len(ledger)
					prof = iosim.Characterize(ledger)
				}
				if prof.TotalBytes == 0 {
					b.Fatal("empty profile")
				}
				if d := liveHeap(base.HeapAlloc); d > peak {
					peak = d
				}
				runtime.KeepAlive(ledger)
				runtime.KeepAlive(fold)
				runtime.KeepAlive(fs)
			}
			b.ReportMetric(float64(peak), "peak-heap-bytes")
			if mode == "retention" {
				b.ReportMetric(float64(records), "ledger-records")
			}
		})
	}
}

// BenchmarkCampaignSweep1000 pushes 1000 distinct cases through the
// four service-layer execution modes and reports cases/sec: retention
// (materialize + batch reduce, the pre-service flow), streaming
// (attached fold, the serve flow for a cache miss), and the memoized
// executor cold (every case a miss) and warm (the same 1000 cases
// re-swept, every case a hit). warm/cold is the memoization claim.
func BenchmarkCampaignSweep1000(b *testing.B) {
	const sweep = 1000
	const maxStep = 24
	runMode := func(b *testing.B, runCase func(i int)) {
		b.Helper()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for j := 0; j < sweep; j++ {
				runCase(j)
			}
		}
		secs := time.Since(start).Seconds()
		if secs > 0 {
			b.ReportMetric(float64(b.N)*sweep/secs, "cases/sec")
		}
	}
	b.Run("retention", func(b *testing.B) {
		runMode(b, func(j int) {
			c := sweepCase(j, maxStep)
			fs := iosim.New(c.FSConfig(false), "")
			if _, err := campaign.Run(c, fs); err != nil {
				b.Fatal(err)
			}
			if prof := iosim.Characterize(fs.Ledger()); prof.TotalBytes == 0 {
				b.Fatal("empty profile")
			}
		})
	})
	b.Run("streaming", func(b *testing.B) {
		runMode(b, func(j int) {
			c := sweepCase(j, maxStep)
			fs := iosim.New(c.FSConfig(false), "")
			fold := iosim.NewCharacterizeFold()
			fs.Attach(fold)
			if _, err := campaign.Run(c, fs); err != nil {
				b.Fatal(err)
			}
			fs.FlushConsumers()
			if prof := fold.Profile(); prof.TotalBytes == 0 {
				b.Fatal("empty profile")
			}
		})
	})
	b.Run("memoized-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec := campaign.NewExecutor(1024, false)
			start := time.Now()
			for j := 0; j < sweep; j++ {
				if _, err := exec.RunCase(sweepCase(j, maxStep), 0); err != nil {
					b.Fatal(err)
				}
			}
			secs := time.Since(start).Seconds()
			if st := exec.Stats(); st.Misses != sweep {
				b.Fatalf("cold sweep: %d misses, want %d", st.Misses, sweep)
			}
			if secs > 0 {
				b.ReportMetric(sweep/secs, "cases/sec")
			}
		}
	})
	b.Run("memoized-warm", func(b *testing.B) {
		exec := campaign.NewExecutor(1024, false)
		for j := 0; j < sweep; j++ {
			if _, err := exec.RunCase(sweepCase(j, maxStep), 0); err != nil {
				b.Fatal(err)
			}
		}
		runMode(b, func(j int) {
			out, err := exec.RunCase(sweepCase(j, maxStep), 0)
			if err != nil {
				b.Fatal(err)
			}
			if !out.Cached {
				b.Fatalf("warm sweep: case %d missed the cache", j)
			}
		})
	})
}
