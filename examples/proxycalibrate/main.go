// Proxycalibrate demonstrates the paper's full methodology loop (its
// Fig. 1): run the AMR application, measure its output ledger, translate
// the inputs into MACSio parameters (Listing 1 with Eq. 3 and a calibrated
// dataset_growth), run the MACSio proxy, and compare the two workloads —
// the Fig. 9/10 procedure end to end.
//
//	go run ./examples/proxycalibrate
package main

import (
	"fmt"
	"log"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/report"
	"amrproxyio/internal/stats"
)

func main() {
	// Step 1: the reference AMReX-Castro run (scaled case4 pivot).
	pivot := campaign.Case4Variant(0.6, 3).Scaled(8)
	fs := iosim.New(iosim.DefaultConfig(), "")
	res, err := campaign.Run(pivot, fs)
	if err != nil {
		log.Fatal(err)
	}
	_, measured := core.PerStepBytes(res.Records)
	fmt.Printf("reference run %s: %d plot events, %s total\n",
		pivot.Name, len(measured), report.HumanBytes(res.TotalBytes()))

	// Step 2: translate AMR inputs -> MACSio parameters. MatchFileBytes
	// fits Eq. 3's f against on-disk bytes (dividing out MACSio's JSON
	// textual inflation), so the proxy's files match the Castro files
	// byte-for-byte in aggregate. The paper's own f ≈ 23-25 uses the
	// nominal part_size semantics (core.MatchNominal) instead.
	opts := core.DefaultTranslateOptions()
	opts.Match = core.MatchFileBytes
	tr, err := core.Translate(pivot.Inputs(), res.Records, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq. 3: f = %.2f, part_size = %d\n", tr.F, tr.MACSio.PartSize)
	fmt.Printf("calibrated dataset_growth = %.6f (%d calibration evaluations)\n",
		tr.Kernel.Growth, len(tr.Trace))
	fmt.Println(report.Listing1(tr, pivot.NProcs))

	// Step 3: actually run the MACSio proxy with the translated config.
	proxyFS := iosim.New(iosim.DefaultConfig(), "")
	proxyRecs, err := macsio.Run(proxyFS, tr.MACSio)
	if err != nil {
		log.Fatal(err)
	}
	perStep := macsio.BytesPerStep(proxyRecs)

	// Step 4: compare measured vs proxy, per step.
	fmt.Println("\nper-step comparison (AMReX measured vs MACSio proxy):")
	var meas, prox []float64
	for k := 0; k < len(measured) && k < len(perStep); k++ {
		meas = append(meas, float64(measured[k]))
		prox = append(prox, float64(perStep[k]))
		fmt.Printf("  step %2d  castro %10s   macsio %10s   ratio %.3f\n",
			k, report.HumanBytes(measured[k]), report.HumanBytes(perStep[k]),
			float64(perStep[k])/float64(measured[k]))
	}
	fmt.Printf("\nproxy fidelity: MAPE %.2f%%  Pearson %.4f\n",
		stats.MAPE(meas, prox), stats.Pearson(meas, prox))
	fmt.Println("\n(the paper's claim: a single calibrated growth factor keeps the")
	fmt.Println(" proxy 'close enough' to the non-linear AMR output trajectory)")
}
