// Quickstart: run a small Sedov AMR simulation, write plotfiles to a
// temporary directory on real disk, read one back, and print the
// per-(step, level, task) output ledger — the paper's Eq. (2) hierarchy —
// plus the Darshan-style I/O characterization of the run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/report"
	"amrproxyio/internal/sim"
)

func main() {
	// 1. Configure a Castro-like run: Listing 2 defaults, shrunk.
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{64, 64}
	cfg.MaxLevel = 2
	cfg.MaxStep = 60
	cfg.PlotInt = 20
	cfg.NProcs = 4
	cfg.MaxGridSize = 32

	// 2. Point the filesystem model at a real directory so the plotfiles
	//    are inspectable.
	dir, err := os.MkdirTemp("", "amrproxyio-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fsCfg := iosim.DefaultConfig()
	fsCfg.Backend = iosim.RealDisk
	fs := iosim.New(fsCfg, dir)

	// 3. Run.
	s, err := sim.New(cfg, sim.DefaultOptions(), fs)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d steps to t=%.4g, wrote %d plotfiles under %s\n",
		s.Step, s.Time, s.NPlots(), dir)

	// 4. The ledger: bytes per (step, level, rank).
	fmt.Println("\noutput ledger (Eq. 2 hierarchy):")
	for _, r := range s.Records() {
		fmt.Printf("  step %3d  level %d  task %d  %s\n",
			r.Step, r.Level, r.Rank, report.HumanBytes(r.Bytes))
	}

	// 5. Read a plotfile back to prove the on-disk format round-trips.
	root := fmt.Sprintf("%s%05d", cfg.PlotFile, 0)
	meta, err := plotfile.ReadHeader(filepath.Join(dir, root))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-read %s: version %q, %d variables, finest level %d, t=%g\n",
		root, meta.Version, len(meta.VarNames), meta.FinestLevel, meta.Time)
	level0, err := plotfile.ReadLevelData(filepath.Join(dir, root), 0, len(meta.VarNames))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level 0 has %d boxes; first box %v holds %d values\n",
		len(level0.Boxes), level0.Boxes[0], len(level0.Data[0]))

	// 6. The Darshan-style profile of everything the run wrote: operation
	//    counts, size percentiles, burst cadence. The filesystem ledger
	//    also counts the plotfile directory creations (metadata ops).
	fmt.Println()
	fmt.Print(iosim.Characterize(fs.Ledger()).Render())

	// 7. The same run against the tiered burst-buffer stack (the
	//    -storage sweep the campaign CLI exposes): a small DataWarp-style
	//    per-job allocation fills mid-burst and stalls to the drain rate,
	//    and the characterization gains the storage-tier lines. StepSeconds
	//    puts compute gaps between bursts so the drain overlaps them.
	bbCfg := iosim.DefaultConfig()
	bbCfg.Storage = iosim.StorageTiered
	bbCfg.BurstBuffer = iosim.DefaultBurstBuffer(1)
	bbCfg.BurstBuffer.NodeCapacity = 4e5 // per-job allocation, not the full 1.6 TB NVMe
	bbCfg.BurstBuffer.DrainBandwidth = 2e8
	bbfs := iosim.New(bbCfg, "")
	opts := sim.DefaultOptions()
	opts.StepSeconds = 0.01
	bbSim, err := sim.New(cfg, opts, bbfs)
	if err != nil {
		log.Fatal(err)
	}
	if err := bbSim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame run on %q (per-job bb allocation %s/node):\n",
		bbCfg.Storage, report.HumanBytes(int64(bbCfg.BurstBuffer.NodeCapacity)))
	fmt.Print(iosim.Characterize(bbfs.Ledger()).Render())
}
