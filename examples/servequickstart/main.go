// Serve quickstart: start the campaign service in-process, submit a
// duplicated three-case batch the way a sweep client would, and watch
// the NDJSON stream come back one line per completed case — the
// repeated configuration is served from the fingerprint cache, and
// /statz accounts for it.
//
//	go run ./examples/servequickstart
//
// The same flow against the real binary looks like this:
//
//	$ go run ./cmd/amrio-campaign -serve 127.0.0.1:8080 -parallel 4 &
//	amrio-campaign: serving on 127.0.0.1:8080
//
//	$ curl -s -X POST --data-binary @batch.json http://127.0.0.1:8080/run
//	{"index":0,"name":"smoke-a","cached":false,"output":{...}}
//	{"index":1,"name":"smoke-a","cached":true,"output":{...}}
//	{"index":2,"name":"smoke-b","cached":false,"output":{...}}
//
//	$ curl -s http://127.0.0.1:8080/statz
//	{
//	  "hits": 1,
//	  "misses": 2,
//	  ...
//	  "cases_completed": 3
//	}
//
//	$ kill -TERM %1
//	amrio-campaign: draining in-flight batches
//	amrio-campaign: drained (3 cases served, 33% cache hits)
//
// Lines stream as cases complete: submit a slow hydro case next to a
// fast surrogate case and the fast line arrives while the hydro case
// is still stepping (curl -N shows it live).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/serve"
)

func main() {
	// 1. The service: the same internal/serve server amrio-campaign
	//    -serve wraps, on an ephemeral loopback port.
	srv := serve.New(serve.Options{Parallel: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 2. A batch with a deliberate exact duplicate: same name, same
	//    configuration. CheckBatch allows it (it is the memoization
	//    demo); a same-named case with a *different* configuration
	//    would be rejected with a 400 before any work ran.
	small := campaign.Case{
		Name: "demo-a", NCell: 512, MaxLevel: 1, MaxStep: 8, PlotInt: 2,
		CFL: 0.5, NProcs: 8, Nodes: 2, Engine: campaign.EngineSurrogate,
	}
	bigger := small
	bigger.Name = "demo-b"
	bigger.MaxStep = 12
	batch, err := json.Marshal([]campaign.Case{small, small, bigger})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Submit and read the NDJSON stream line by line, as each case
	//    completes.
	resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(batch))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Printf("\nPOST /run -> %s\n", resp.Status)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line serve.CaseLine
		dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&line); err != nil {
			log.Fatal(err)
		}
		src := "computed"
		if line.Cached {
			src = "cache hit"
		}
		fmt.Printf("  case %d %-8s %-9s total bytes %d\n",
			line.Index, line.Name, src, line.Output.Result.TotalBytes())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// 4. The operations view: hit rate, throughput, in-flight gauges.
	st := srv.Stats()
	fmt.Printf("\n/statz: %d hits, %d misses, hit rate %.0f%%, %d cases completed\n",
		st.Hits, st.Misses, 100*st.HitRate, st.CasesCompleted)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
