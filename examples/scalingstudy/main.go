// Scalingstudy reproduces the paper's large-scale story (Fig. 11 and the
// top rows of Table III): Summit-class meshes — up to 131072x131072, ~17
// billion cells on 1024 ranks — run through the surrogate pipeline, where
// the same meshing and N-to-N plotfile machinery executes in metadata-only
// mode. It prints the modeled output volume, per-step burst behavior on
// the Summit-like filesystem model, and the kernel-model comparison.
//
// Each scale runs twice: once against the aggregate bandwidth pool and
// once against the per-link topology model (ranks packed onto Summit
// nodes, per-node NIC caps, Alpine NSD fan-in), showing how placement
// stretches the same byte volume into longer bursts. The surrogate's
// mesh-exchange traffic is priced on the same topology, so compute and
// I/O traffic share one contention model.
//
// The closing sections are the experiment sweeps: one Summit-scale case
// swept across roundrobin/knapsack/sfc placements (campaign.SweepDist +
// report.DistReport), the inter-burst layout reorganization (Wan et al.,
// amr.RemapToTargets) rebalancing the rank→target fan-in of the
// round-robin placement, and the storage-tier sweep
// (campaign.SweepStorage + report.StorageReport — the amrio-campaign
// -storage flag): the same 512-rank bursts priced against the Alpine
// GPFS, the node-local NVMe burst buffer, and the tiered stack, showing
// per-tier bytes, buffer fill, drain-compute overlap, and stall
// stragglers. The final section is the two-phase aggregation crossover
// (campaign.SweepAggregation + report.AggregationReport — the
// -aggregation flag): the same bursts as direct, 2-per-node, and
// 1-per-node collectives on GPFS and on the tiered stack, where the
// winning layout flips with the storage stack.
//
//	go run ./examples/scalingstudy
package main

import (
	"fmt"
	"log"
	"time"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
	"amrproxyio/internal/resilience"
	"amrproxyio/internal/surrogate"
)

// totalCross sums the cross-rank traffic volume of an exchange.
func totalCross(pairs []iosim.PairBytes) int64 {
	var n int64
	for _, p := range pairs {
		if p.Src != p.Dst {
			n += p.Bytes
		}
	}
	return n
}

func main() {
	fmt.Println("Summit-scale AMR I/O scaling study (surrogate engine, metadata only)")
	fmt.Println()

	for _, n := range []int{8192, 32768, 131072} {
		c := campaign.Case{
			Name: fmt.Sprintf("scale_%d", n), NCell: n, MaxLevel: 2,
			MaxStep: 20, PlotInt: 10, CFL: 0.5,
			NProcs: 1024, Nodes: 512, Engine: campaign.EngineSurrogate,
		}

		// Aggregate model: one shared bandwidth pool.
		fs := iosim.New(iosim.DefaultConfig(), "")
		start := time.Now()
		res, err := campaign.Run(c, fs)
		if err != nil {
			log.Fatal(err)
		}
		cells := int64(n) * int64(n)
		fmt.Printf("%7dx%-7d (%5.2gB cells) -> %9s modeled output in %6v wall\n",
			n, n, float64(cells)/1e9, report.HumanBytes(res.TotalBytes()), time.Since(start).Round(time.Millisecond))
		aggregate := iosim.BurstStats(fs.Ledger())

		// Per-link model: same case, ranks packed onto its Summit nodes.
		topoCfg := iosim.DefaultConfig()
		topoCfg.Topology = c.Topology()
		tfs := iosim.New(topoCfg, "")
		if _, err := campaign.Run(c, tfs); err != nil {
			log.Fatal(err)
		}
		perLink := iosim.BurstStats(tfs.Ledger())
		for i, b := range aggregate {
			t := perLink[i]
			fmt.Printf("    step %2d: %9s across %5d files, burst %6.2fs aggregate | %6.2fs per-link (link-skew %.2f)\n",
				b.Step, report.HumanBytes(b.Bytes), b.Files, b.WallSeconds,
				t.WallSeconds, t.LinkSkew)
		}
	}

	// The mesh side of the same contention model: the surrogate's ghost
	// exchange priced per-node (solver stencil: 2 ghosts, 4 components).
	large := campaign.LargeCase()
	topo := large.Topology()
	runner, err := surrogate.New(large.Inputs(), surrogate.DefaultOptions(), nil)
	if err != nil {
		log.Fatal(err)
	}
	traffic := runner.ExchangeTraffic(2, 4)
	fmt.Printf("\nMesh exchange on %d nodes (%s): %s/step cross-rank, %.4gs at the NICs\n",
		topo.Nodes, large.Name,
		report.HumanBytes(totalCross(traffic)),
		topo.ExchangeTime(traffic, large.NProcs, 0))

	topoCfg := iosim.DefaultConfig()
	topoCfg.Topology = topo
	tfs := iosim.New(topoCfg, "")
	res, err := campaign.Run(large, tfs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("I/O bursts on the same topology: %s\n", report.LinkSummary(tfs.Ledger()))

	// Fig. 11: the 8192^2 per-step series against the calibrated kernel.
	fmt.Println("\nFig. 11 comparison (8192^2, kernel model vs surrogate measurement):")
	tr, err := core.Translate(large.Inputs(), res.Records, core.DefaultTranslateOptions())
	if err != nil {
		log.Fatal(err)
	}
	p, mape := report.Fig11(res, tr.Kernel)
	fmt.Println(p.Render())
	fmt.Printf("kernel MAPE at scale: %.3f%% (the paper: 'kernels in the vicinity'\n", mape)
	fmt.Println(" of the measured values; non-smooth jumps only approximated)")

	// Distribution-mapping experiment layer: the same Summit-scale case
	// swept across the three mapping strategies on the per-link model.
	// 1024 ranks fan into Alpine's 77 NSD targets, so placement decides
	// which targets collide.
	distCase := campaign.Case{
		Name: "dist_32768", NCell: 32768, MaxLevel: 2,
		MaxStep: 20, PlotInt: 10, CFL: 0.5,
		NProcs: 1024, Nodes: 512, Engine: campaign.EngineSurrogate,
	}
	fmt.Println("\nDistribution-mapping sweep (32768^2, 1024 ranks, per-link model):")
	var runs []report.DistRun
	for _, c := range campaign.SweepDist([]campaign.Case{distCase}) {
		cfg := iosim.DefaultConfig()
		cfg.Topology = c.Topology()
		fs := iosim.New(cfg, "")
		if _, err := campaign.Run(c, fs); err != nil {
			log.Fatal(err)
		}
		runs = append(runs, report.DistRun{Dist: string(c.Dist), Ledger: fs.Ledger()})
	}
	fmt.Print(report.DistReportRuns(runs))
	fmt.Println(report.FigDistSkew(runs).Render())

	// The inter-burst layout reorganization (Wan et al.) on top of the
	// round-robin placement: amr.RemapToTargets rebalances the
	// rank→target fan-in from the hierarchy's per-rank load before each
	// dump.
	remapped := distCase
	remapped.Dist = campaign.DistRoundRobin
	remapped.Remap = true
	remapCfg := iosim.DefaultConfig()
	remapCfg.Topology = remapped.Topology()
	remapFS := iosim.New(remapCfg, "")
	if _, err := campaign.Run(remapped, remapFS); err != nil {
		log.Fatal(err)
	}
	before := report.SummarizeDist("roundrobin", runs[0].Ledger)
	after := report.SummarizeDist("roundrobin+remap", remapFS.Ledger())
	fmt.Printf("inter-burst remap: max target fan-in %s -> %s (imbalance %.3f -> %.3f)\n",
		report.HumanBytes(before.MaxTargetBytes), report.HumanBytes(after.MaxTargetBytes),
		before.TargetImbalance, after.TargetImbalance)

	// Storage-tier sweep (the amrio-campaign -storage flag): the same
	// 512-rank case priced against gpfs, the node-local burst buffer,
	// and the tiered stack. A DataWarp-style per-job allocation (instead
	// of the whole 1.6 TB NVMe) and a single congested drain stream make
	// the fill/stall/drain dynamics visible at proxy scale; compute gaps
	// between steps (Case.ComputeSeconds) are what the drain overlaps.
	storageCase := campaign.Case{
		Name: "storage_16384", NCell: 16384, MaxLevel: 2,
		MaxStep: 20, PlotInt: 5, CFL: 0.5,
		NProcs: 512, Nodes: 128, Engine: campaign.EngineSurrogate,
		ComputeSeconds: 0.5,
	}
	fmt.Println("\nStorage-tier sweep (16384^2, 512 ranks, per-link model):")
	var storageRuns []report.StorageRun
	for _, c := range campaign.SweepStorage([]campaign.Case{storageCase}) {
		cfg := c.FSConfig(true)
		cfg.PerWriterBandwidth = 1e8 // congested GPFS streams throttle the tiered drain
		cfg.BurstBuffer.NodeCapacity = 6.4e7
		cfg.BurstBuffer.DrainBandwidth = 8e8
		fs := iosim.New(cfg, "")
		if _, err := campaign.Run(c, fs); err != nil {
			log.Fatal(err)
		}
		storageRuns = append(storageRuns, report.StorageRun{Storage: string(c.Storage), Ledger: fs.Ledger()})
	}
	fmt.Print(report.StorageReportRuns(storageRuns))
	fmt.Println(report.FigBBFill(storageRuns).Render())

	// Resilience demo (the amrio-campaign -faults flag): the tiered
	// 512-rank case run fault-free and under an injected plan — an NSD
	// target outage during the early bursts, a half-bandwidth node, and
	// MTBF-driven rank interrupts that replay from the last completed
	// checkpoint. The report prices what the checkpoint cadence buys:
	// lost work, restart reads, and the forward-progress rate.
	plan := &faults.Plan{
		Events: []faults.Event{
			{Kind: faults.KindTargetOutage, Start: 0.1, End: 20, Target: 0},
			{Kind: faults.KindNICDegrade, Start: 0, End: 30, Node: 0, Factor: 0.5},
		},
		MTBFSeconds: 40,
		Seed:        17,
	}
	fmt.Println("\nResilience sweep (16384^2, 512 ranks, bb+gpfs, injected faults):")
	var resilSums []report.ResilienceSummary
	for _, v := range []campaign.FaultVariant{{Name: "nofault"}, {Name: "faults", Plan: plan}} {
		c := storageCase
		c.Storage = campaign.StorageTiered
		c.Faults = v.Plan
		c.Name = campaign.SweepFaultsName(storageCase.Name, v.Name)
		fs := iosim.New(c.FSConfig(true), "")
		if _, err := campaign.Run(c, fs); err != nil {
			log.Fatal(err)
		}
		resilSums = append(resilSums, report.ResilienceSummary{
			Name:       c.Name,
			Resilience: faults.Analyze(v.Plan, fs.Ledger(), fs.FaultEvents()),
		})
	}
	fmt.Print(report.ResilienceReport(resilSums))

	// Closed-loop mitigation demo (the amrio-campaign -mitigate flag):
	// the same faulted tiered case run passively and with the default
	// mitigation policy — adaptive checkpoint cadence off the online MTBF
	// estimate, target quarantine after repeated retry storms, and
	// degraded-mode plot shedding under fault pressure. The pair report
	// prices what the loop buys: forward progress up, storm seconds down.
	fmt.Println("\nMitigation comparison (16384^2, 512 ranks, bb+gpfs, default policy):")
	mitCase := storageCase
	mitCase.Storage = campaign.StorageTiered
	mitCase.Faults = plan
	var mitSums [2]report.MitigationSummary
	for i, v := range []campaign.MitigateVariant{
		{Name: "nomitigate"},
		{Name: "mitigate", Policy: resilience.DefaultPolicy()},
	} {
		c := mitCase
		c.Mitigate = v.Policy
		c.Name = campaign.SweepMitigateName(mitCase.Name, v.Name)
		fs := iosim.New(c.FSConfig(true), "")
		res, err := campaign.Run(c, fs)
		if err != nil {
			log.Fatal(err)
		}
		mitSums[i] = report.MitigationSummary{
			Name:    c.Name,
			Outcome: resilience.Evaluate(c.Name, plan, fs.Ledger(), fs.FaultEvents(), res.Mitigation),
		}
	}
	fmt.Print(report.MitigationReport([]report.MitigationPair{{
		Base: mitCase.Name, Unmitigated: mitSums[0], Mitigated: mitSums[1],
	}}))

	// Two-phase aggregation crossover (the amrio-campaign -aggregation
	// flag): the same 512-rank bursts swept across direct / 2-per-node /
	// 1-per-node collectives on bare GPFS and on the tiered stack. On
	// GPFS the per-writer stream cap binds, so concentrating 512 streams
	// into 128 loses more write time than the open savings recoup —
	// direct wins. On bb+gpfs the node-local NVMe absorbs per-rank
	// traffic regardless of fan-in, so the open-storm savings dominate
	// and 1/node wins: the optimal layout flips with the storage stack.
	aggCase := campaign.Case{
		Name: "agg_8192", NCell: 8192, MaxLevel: 2,
		MaxStep: 6, PlotInt: 2, CFL: 0.5,
		NProcs: 512, Nodes: 128, Engine: campaign.EngineSurrogate,
	}
	for _, storage := range []campaign.Storage{campaign.StorageGPFS, campaign.StorageTiered} {
		fmt.Printf("\nAggregation crossover (8192^2, 512 ranks, %s):\n", storage)
		var aggSums []report.AggregationSummary
		for _, c := range campaign.SweepAggregation([]campaign.Case{aggCase}) {
			c.Storage = storage
			cfg := c.FSConfig(true)
			cfg.JitterSigma = 0
			cfg.OpenLatency = 0.005      // a metadata-server round trip per open
			cfg.PerWriterBandwidth = 1e8 // congested per-stream GPFS caps
			fs := iosim.New(cfg, "")
			if _, err := campaign.Run(c, fs); err != nil {
				log.Fatal(err)
			}
			aggSums = append(aggSums, report.SummarizeAggregation(c.Name, fs.Ledger()))
		}
		fmt.Print(report.AggregationReport(aggSums))
	}
}
