// Scalingstudy reproduces the paper's large-scale story (Fig. 11 and the
// top rows of Table III): Summit-class meshes — up to 131072x131072, ~17
// billion cells on 1024 ranks — run through the surrogate pipeline, where
// the same meshing and N-to-N plotfile machinery executes in metadata-only
// mode. It prints the modeled output volume, per-step burst behavior on
// the Summit-like filesystem model, and the kernel-model comparison.
//
//	go run ./examples/scalingstudy
package main

import (
	"fmt"
	"log"
	"time"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
)

func main() {
	fmt.Println("Summit-scale AMR I/O scaling study (surrogate engine, metadata only)")
	fmt.Println()

	for _, n := range []int{8192, 32768, 131072} {
		c := campaign.Case{
			Name: fmt.Sprintf("scale_%d", n), NCell: n, MaxLevel: 2,
			MaxStep: 20, PlotInt: 10, CFL: 0.5,
			NProcs: 1024, Nodes: 512, Engine: campaign.EngineSurrogate,
		}
		fs := iosim.New(iosim.DefaultConfig(), "")
		start := time.Now()
		res, err := campaign.Run(c, fs)
		if err != nil {
			log.Fatal(err)
		}
		cells := int64(n) * int64(n)
		fmt.Printf("%7dx%-7d (%5.2gB cells) -> %9s modeled output in %6v wall\n",
			n, n, float64(cells)/1e9, report.HumanBytes(res.TotalBytes()), time.Since(start).Round(time.Millisecond))
		stats := iosim.BurstStats(fs.Ledger())
		for _, b := range stats {
			fmt.Printf("    step %2d: %9s across %5d files, burst %6.2fs at %s/s effective\n",
				b.Step, report.HumanBytes(b.Bytes), b.Files, b.WallSeconds,
				report.HumanBytes(int64(b.EffectiveBW)))
		}
	}

	// Fig. 11: the 8192^2 per-step series against the calibrated kernel.
	fmt.Println("\nFig. 11 comparison (8192^2, kernel model vs surrogate measurement):")
	fs := iosim.New(iosim.DefaultConfig(), "")
	res, err := campaign.Run(campaign.LargeCase(), fs)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := core.Translate(campaign.LargeCase().Inputs(), res.Records, core.DefaultTranslateOptions())
	if err != nil {
		log.Fatal(err)
	}
	p, mape := report.Fig11(res, tr.Kernel)
	fmt.Println(p.Render())
	fmt.Printf("kernel MAPE at scale: %.3f%% (the paper: 'kernels in the vicinity'\n", mape)
	fmt.Println(" of the measured values; non-smooth jumps only approximated)")
}
