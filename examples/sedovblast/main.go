// Sedovblast renders the paper's Fig. 4: the AMR mesh tracking the
// expanding blast wave and the Mach-number solution, as ASCII rasters.
// The refined-level overlay shows the moving fine grids hugging the shock
// front — the geometry that drives the I/O imbalance the paper studies.
//
//	go run ./examples/sedovblast
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"amrproxyio/internal/grid"
	"amrproxyio/internal/hydro"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/sim"
)

func main() {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{64, 64}
	cfg.MaxLevel = 2
	cfg.MaxStep = 200
	cfg.PlotInt = 0 // no plotfiles; we render in-process
	cfg.MaxGridSize = 32
	cfg.NProcs = 4

	s, err := sim.New(cfg, sim.DefaultOptions(), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sedov blast after %d steps (t = %.5g), finest level %d\n\n",
		s.Step, s.Time, s.FinestLevel())

	fmt.Println("(a) AMR mesh: '.' = L0 only, '1' = covered by L1, '2' = covered by L2")
	fmt.Println(renderGrids(s))
	fmt.Println("(b) Mach number field (0-9 scale, sampled on L0 + average-down)")
	fmt.Println(renderMach(s))
}

// renderGrids rasterizes level coverage onto the L0 index space.
func renderGrids(s *sim.Sim) string {
	n := s.Cfg.NCell[0]
	raster := make([][]byte, n)
	for j := range raster {
		raster[j] = []byte(strings.Repeat(".", n))
	}
	for l := 1; l < len(s.Levels); l++ {
		ratio := 1
		for k := 0; k < l; k++ {
			ratio *= s.Cfg.RefRatioAt(k)
		}
		mark := byte('0' + l)
		for _, b := range s.Levels[l].BA.Boxes {
			cb := b.Coarsen(ratio)
			for j := cb.Lo.Y; j <= cb.Hi.Y; j++ {
				for i := cb.Lo.X; i <= cb.Hi.X; i++ {
					if j >= 0 && j < n && i >= 0 && i < n {
						raster[j][i] = mark
					}
				}
			}
		}
	}
	return rasterToString(raster)
}

// renderMach rasterizes the Mach number from the level-0 state (which
// average-down keeps consistent with the finer levels).
func renderMach(s *sim.Sim) string {
	lev := s.Levels[0]
	n := s.Cfg.NCell[0]
	gamma := s.Opts.Blast.Gamma
	var maxMach float64
	vals := make([][]float64, n)
	for j := range vals {
		vals[j] = make([]float64, n)
		for i := range vals[j] {
			c := hydro.Cons{}
			if v, ok := lev.State.ValueAt(grid.IV(i, j), hydro.IRho); ok {
				c.Rho = v
			}
			c.Mx, _ = lev.State.ValueAt(grid.IV(i, j), hydro.IMx)
			c.My, _ = lev.State.ValueAt(grid.IV(i, j), hydro.IMy)
			c.E, _ = lev.State.ValueAt(grid.IV(i, j), hydro.IEner)
			m := hydro.Mach(hydro.ToPrim(c, gamma), gamma)
			vals[j][i] = m
			if m > maxMach {
				maxMach = m
			}
		}
	}
	raster := make([][]byte, n)
	for j := range raster {
		raster[j] = []byte(strings.Repeat(" ", n))
		for i := range raster[j] {
			if maxMach > 0 {
				level := int(math.Round(vals[j][i] / maxMach * 9))
				if level > 0 {
					raster[j][i] = byte('0' + level)
				}
			}
		}
	}
	out := rasterToString(raster)
	return out + fmt.Sprintf("peak Mach = %.3f\n", maxMach)
}

// rasterToString flips vertically (y up) and compresses to every other
// row so the aspect ratio looks right in a terminal.
func rasterToString(raster [][]byte) string {
	var sb strings.Builder
	for j := len(raster) - 1; j >= 0; j -= 2 {
		sb.Write(raster[j])
		sb.WriteByte('\n')
	}
	return sb.String()
}
