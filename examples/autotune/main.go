// Autotune demonstrates the paper's stated follow-up (§V): using the
// calibrated proxy machinery predictively. It trains a size model on a
// handful of small measured runs, then — without running any further AMR
// simulation — predicts the output workload of larger, unseen
// configurations and emits ready-to-run MACSio invocations for them. This
// is the "autotune data management strategies in anticipation of exascale
// systems" loop the paper's abstract motivates.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/report"
)

func main() {
	// 1. Measure a small training campaign (seconds of laptop time).
	train := []campaign.Case{
		{Name: "t32l2", NCell: 32, MaxLevel: 2, MaxStep: 200, PlotInt: 20, CFL: 0.3, NProcs: 2, Engine: campaign.EngineHydro},
		{Name: "t32l3", NCell: 32, MaxLevel: 3, MaxStep: 200, PlotInt: 20, CFL: 0.5, NProcs: 2, Engine: campaign.EngineHydro},
		{Name: "t64l2", NCell: 64, MaxLevel: 2, MaxStep: 200, PlotInt: 20, CFL: 0.3, NProcs: 4, Engine: campaign.EngineHydro},
		{Name: "t64l3", NCell: 64, MaxLevel: 3, MaxStep: 200, PlotInt: 20, CFL: 0.6, NProcs: 4, Engine: campaign.EngineHydro},
		{Name: "t64f", NCell: 64, MaxLevel: 2, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 4, Engine: campaign.EngineHydro},
		{Name: "t96l2", NCell: 96, MaxLevel: 2, MaxStep: 200, PlotInt: 20, CFL: 0.4, NProcs: 4, Engine: campaign.EngineHydro},
		{Name: "t96l3", NCell: 96, MaxLevel: 3, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 4, Engine: campaign.EngineHydro},
	}
	var obs []core.RunObservation
	fmt.Println("training runs:")
	for _, c := range train {
		res, err := campaign.Run(c, iosim.New(iosim.DefaultConfig(), ""))
		if err != nil {
			log.Fatal(err)
		}
		o := res.Observation()
		obs = append(obs, o)
		fmt.Printf("  %-6s %4dx%-4d maxlev %d cfl %.1f -> %s over %d plots\n",
			c.Name, c.NCell, c.NCell, c.MaxLevel, c.CFL,
			report.HumanBytes(o.TotalBytes), o.PlotEvents)
	}

	// 2. Fit the log-linear size model.
	p, err := core.FitSizePredictor(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted size model: R^2 = %.4f, in-sample MAPE = %.1f%%\n",
		p.Fit.R2, p.InSampleMAPE)

	// 3. Predict unseen configurations — including Summit-class ones the
	//    training never touched — and emit proxy invocations.
	targets := []core.RunObservation{
		{NCellX: 512, NCellY: 512, MaxLevel: 4, CFL: 0.4, NProcs: 32, PlotEvents: 21},     // the paper's case4
		{NCellX: 8192, NCellY: 8192, MaxLevel: 2, CFL: 0.5, NProcs: 1024, PlotEvents: 51}, // the paper's Fig. 11 case
	}
	fmt.Println("\npredicted workloads for unseen configurations:")
	for _, o := range targets {
		kernel := p.PredictMACSio(o)
		mcfg := macsio.DefaultConfig()
		mcfg.FileMode = macsio.ModeMIF
		mcfg.MIFFiles = o.NProcs
		mcfg.NumDumps = o.PlotEvents
		mcfg.PartSize = int64(kernel.Base / float64(o.NProcs))
		mcfg.DatasetGrowth = kernel.Growth
		mcfg.NProcs = o.NProcs
		fmt.Printf("\n  %dx%d, maxlev %d, cfl %.1f, %d ranks:\n", o.NCellX, o.NCellY, o.MaxLevel, o.CFL, o.NProcs)
		fmt.Printf("    predicted total: %s across %d dumps (growth %.4f)\n",
			report.HumanBytes(int64(p.PredictBytes(o))), o.PlotEvents, kernel.Growth)
		fmt.Printf("    proxy: jsrun -n %d %s\n", o.NProcs, mcfg.CommandLine())
	}
}
