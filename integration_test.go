// Cross-module integration tests: each test exercises a full paper
// workflow through several packages at once (solver -> plotfile -> ledger
// -> model -> proxy -> comparison), asserting the invariants that the
// per-package unit tests cannot see.
package amrproxyio_test

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/report"
	"amrproxyio/internal/sim"
	"amrproxyio/internal/surrogate"
)

func testFS() *iosim.FileSystem {
	cfg := iosim.DefaultConfig()
	cfg.JitterSigma = 0
	return iosim.New(cfg, "")
}

// TestHydroAndSurrogateAgreeAtLevelZero checks that the two execution
// engines model exactly the same L0 output bytes for the same inputs —
// the property that justifies the Summit-scale substitution.
func TestHydroAndSurrogateAgreeAtLevelZero(t *testing.T) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{64, 64}
	cfg.MaxLevel = 0
	cfg.MaxStep = 8
	cfg.PlotInt = 4
	cfg.NProcs = 4
	cfg.MaxGridSize = 32
	cfg.StopTime = 10

	hfs := testFS()
	s, err := sim.New(cfg, sim.DefaultOptions(), hfs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	sfs := testFS()
	r, err := surrogate.New(cfg, surrogate.DefaultOptions(), sfs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}

	hBytes := iosim.BytesByLevel(hfs.Ledger())[0]
	sBytes := iosim.BytesByLevel(sfs.Ledger())[0]
	// Both wrote 3 plots of the same L0 box layout; the Cell_D payloads
	// are byte-identical by construction. Headers can differ by a few
	// bytes (different time stamps widths), so compare to 0.1%.
	if math.Abs(float64(hBytes-sBytes))/float64(hBytes) > 0.001 {
		t.Errorf("L0 bytes differ: hydro %d vs surrogate %d", hBytes, sBytes)
	}
}

// TestPaperLoopEndToEnd walks Fig. 1 completely: Castro run -> ledger ->
// translation -> MACSio run -> per-step workload comparison, asserting the
// proxy reproduces the measured series within the paper's tolerance.
func TestPaperLoopEndToEnd(t *testing.T) {
	pivot := campaign.Case4Variant(0.4, 3).Scaled(8)
	res, err := campaign.Run(pivot, testFS())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultTranslateOptions()
	opts.Match = core.MatchFileBytes
	tr, err := core.Translate(pivot.Inputs(), res.Records, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The translated config must be runnable as-is.
	proxyFS := testFS()
	proxyRecs, err := macsio.Run(proxyFS, tr.MACSio)
	if err != nil {
		t.Fatal(err)
	}
	_, measured := core.PerStepBytes(res.Records)
	proxyPerStep := macsio.BytesPerStep(proxyRecs)
	if len(proxyPerStep) != len(measured) {
		t.Fatalf("dump counts differ: %d vs %d", len(proxyPerStep), len(measured))
	}
	var meas, prox []float64
	for k, m := range measured {
		meas = append(meas, float64(m))
		prox = append(prox, float64(proxyPerStep[k]))
	}
	// Aggregate totals within 15%, per-step correlation strong.
	var mSum, pSum float64
	for i := range meas {
		mSum += meas[i]
		pSum += prox[i]
	}
	if rel := math.Abs(pSum-mSum) / mSum; rel > 0.15 {
		t.Errorf("total bytes mismatch: %.1f%%", rel*100)
	}
	// The proxy's growth trend must correlate with the measurement.
	if len(meas) > 3 && meas[len(meas)-1] > meas[0] {
		if prox[len(prox)-1] <= prox[0] {
			t.Error("proxy lost the growth trend")
		}
	}
}

// TestPlotfileOnDiskMatchesLedger writes real plotfiles and confirms the
// ledger's byte counts equal the files on disk.
func TestPlotfileOnDiskMatchesLedger(t *testing.T) {
	dir := t.TempDir()
	fsCfg := iosim.DefaultConfig()
	fsCfg.Backend = iosim.RealDisk
	fs := iosim.New(fsCfg, dir)

	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{32, 32}
	cfg.MaxLevel = 1
	cfg.MaxStep = 4
	cfg.PlotInt = 4
	cfg.NProcs = 2
	cfg.MaxGridSize = 16
	s, err := sim.New(cfg, sim.DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range fs.Ledger() {
		if rec.Dir {
			continue // zero-byte directory metadata records have no file size
		}
		full := filepath.Join(dir, rec.Path)
		if info, err := statFile(full); err != nil {
			t.Errorf("%s: %v", rec.Path, err)
		} else if info != rec.Bytes {
			t.Errorf("%s: disk %d bytes, ledger %d", rec.Path, info, rec.Bytes)
		}
	}
	// Headers parse and agree with the run's configuration.
	root := filepath.Join(dir, "sedov_2d_cyl_in_cart_plt00000")
	meta, err := plotfile.ReadHeader(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.VarNames) != len(sim.PlotVarNames) {
		t.Errorf("plot vars = %d", len(meta.VarNames))
	}
}

// TestReportsRenderFromLiveRuns drives the reporting layer from live data
// end to end (every figure function at least once).
func TestReportsRenderFromLiveRuns(t *testing.T) {
	pivot := campaign.Case4Variant(0.6, 2).Scaled(16)
	res, err := campaign.Run(pivot, testFS())
	if err != nil {
		t.Fatal(err)
	}
	results := []campaign.Result{res}
	if out := report.Fig5(results).Render(); !strings.Contains(out, "Fig. 5") {
		t.Error("Fig5 broken")
	}
	if out := report.Fig6(results).Render(); !strings.Contains(out, "Fig. 6") {
		t.Error("Fig6 broken")
	}
	if out := report.Fig7(res).Render(); !strings.Contains(out, "L0") {
		t.Error("Fig7 broken")
	}
	p8, _ := report.Fig8(res, 0)
	if out := p8.Render(); !strings.Contains(out, "Fig. 8") {
		t.Error("Fig8 broken")
	}
	tr, err := core.Translate(pivot.Inputs(), res.Records, core.DefaultTranslateOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, measured := core.PerStepBytes(res.Records)
	if out := report.Fig9(measured, tr.Trace, tr.Kernel.Base).Render(); !strings.Contains(out, "measured") {
		t.Error("Fig9 broken")
	}
	p10, mapes := report.Fig10(results, []core.Translation{tr})
	if !strings.Contains(p10.Render(), "model") || len(mapes) != 1 {
		t.Error("Fig10 broken")
	}
	if out := report.TableIII(results); !strings.Contains(out, pivot.Name) {
		t.Error("TableIII broken")
	}
	if out := report.Listing1(tr, pivot.NProcs); !strings.Contains(out, "jsrun") {
		t.Error("Listing1 broken")
	}
}

// TestCharacterizationAcrossEngines compares the Darshan-style profiles of
// the application and its calibrated proxy: file counts, burst counts and
// per-rank imbalance should be of the same magnitude — that is what makes
// the proxy a usable stand-in for I/O-system studies.
func TestCharacterizationAcrossEngines(t *testing.T) {
	pivot := campaign.Case4Variant(0.4, 2).Scaled(8)
	appFS := testFS()
	res, err := campaign.Run(pivot, appFS)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultTranslateOptions()
	opts.Match = core.MatchFileBytes
	tr, err := core.Translate(pivot.Inputs(), res.Records, opts)
	if err != nil {
		t.Fatal(err)
	}
	proxyFS := testFS()
	if _, err := macsio.Run(proxyFS, tr.MACSio); err != nil {
		t.Fatal(err)
	}
	app := iosim.Characterize(appFS.Ledger())
	proxy := iosim.Characterize(proxyFS.Ledger())
	if app.Bursts != proxy.Bursts {
		t.Errorf("burst counts differ: app %d vs proxy %d", app.Bursts, proxy.Bursts)
	}
	if rel := math.Abs(float64(app.TotalBytes-proxy.TotalBytes)) / float64(app.TotalBytes); rel > 0.15 {
		t.Errorf("profile totals differ by %.1f%%", rel*100)
	}
	if proxy.Ranks != pivot.NProcs {
		t.Errorf("proxy ranks = %d, want %d", proxy.Ranks, pivot.NProcs)
	}
}

// TestStorageTierSweep512Ranks is the storage-API acceptance scenario: a
// paper-scale 512-rank surrogate case swept across the three storage
// stacks on the Summit topology renders a StorageReport with non-zero
// drain and stall deltas — the burst buffer absorbs bytes, fills, stalls
// to the drain rate, and drains into the compute gaps, while the
// single-tier gpfs run shows none of that.
func TestStorageTierSweep512Ranks(t *testing.T) {
	base := campaign.Case{
		Name: "storage512", NCell: 4096, MaxLevel: 2, MaxStep: 20, PlotInt: 5,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: campaign.EngineSurrogate,
		ComputeSeconds: 0.01,
	}
	sums := map[campaign.Storage]report.StorageSummary{}
	var ordered []report.StorageSummary
	for _, s := range campaign.AllStorages() {
		c := base
		c.Storage = s
		c.Name = campaign.SweepStorageName(base.Name, s)
		cfg := c.FSConfig(true)
		cfg.JitterSigma = 0
		// A DataWarp-style per-job allocation instead of the whole 1.6 TB
		// NVMe, and a drain slower than the NVMe: bursts fill the
		// partition and stall. The deliberately slow per-writer GPFS
		// stream additionally throttles the tiered drain below the bb one.
		cfg.PerWriterBandwidth = 1e8
		cfg.BurstBuffer.NodeCapacity = 4e6
		cfg.BurstBuffer.DrainBandwidth = 8e8
		fs := iosim.New(cfg, "")
		if _, err := campaign.Run(c, fs); err != nil {
			t.Fatal(err)
		}
		sum := report.SummarizeStorage(string(s), fs.Ledger())
		sums[s] = sum
		ordered = append(ordered, sum)
	}

	gpfs := sums[campaign.StorageGPFS]
	if gpfs.Bytes == 0 || gpfs.WallSeconds == 0 {
		t.Fatalf("gpfs run empty: %+v", gpfs)
	}
	if gpfs.BBBytes != 0 || gpfs.SpillBytes != 0 || gpfs.StallRanks != 0 || gpfs.DrainSeconds != 0 {
		t.Fatalf("single-tier run carries buffer fields: %+v", gpfs)
	}
	for _, s := range []campaign.Storage{campaign.StorageBB, campaign.StorageTiered} {
		sum := sums[s]
		if sum.Bytes != gpfs.Bytes {
			t.Errorf("%s moved %d bytes, gpfs %d: tiers must not change volumes", s, sum.Bytes, gpfs.Bytes)
		}
		// The acceptance deltas: non-zero drain and stall against gpfs.
		if sum.DrainSeconds <= 0 || sum.StallRanks == 0 || sum.StallSeconds <= 0 {
			t.Errorf("%s shows no drain/stall: %+v", s, sum)
		}
		if sum.OverlapSeconds <= 0 {
			t.Errorf("%s drain never overlapped the compute gaps: %+v", s, sum)
		}
		if sum.BBBytes+sum.SpillBytes == 0 || sum.MaxBBFill < 1 {
			t.Errorf("%s buffer never filled: %+v", s, sum)
		}
		if sum.WallSeconds == gpfs.WallSeconds {
			t.Errorf("%s wall identical to gpfs: the tier changed nothing", s)
		}
	}
	// The congested GPFS stream throttles the tiered drain below the
	// standalone bb drain: strictly more stall time.
	if sums[campaign.StorageTiered].StallSeconds <= sums[campaign.StorageBB].StallSeconds {
		t.Errorf("tiered stall %g <= bb stall %g: GPFS coupling missing",
			sums[campaign.StorageTiered].StallSeconds, sums[campaign.StorageBB].StallSeconds)
	}

	out := report.StorageReport(ordered)
	for _, want := range []string{"gpfs", "bb", "bb+gpfs", "stall-ranks", "drain", "overlap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("storage report missing %q:\n%s", want, out)
		}
	}
	t.Logf("512-rank storage sweep:\n%s", out)
}
