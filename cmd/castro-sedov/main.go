// Command castro-sedov runs the AMR Sedov blast-wave simulation from an
// AMReX-style inputs file (the paper's Listing 2 format), writes plotfiles
// in the N-to-N pattern, and reports the per-(step, level, task) output
// ledger the paper's methodology measures.
//
// Usage:
//
//	castro-sedov -inputs inputs.2d [-outdir DIR] [-dist knapsack] [-v]
//
// Without -outdir the filesystem model runs in size-only accounting mode
// (no bytes touch the disk); with it, real plotfiles are produced that the
// plotfile reader (and external tools) can parse.
package main

import (
	"flag"
	"fmt"
	"os"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
	"amrproxyio/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "castro-sedov:", err)
		os.Exit(1)
	}
}

func run() error {
	inputsPath := flag.String("inputs", "", "AMReX-style inputs file (default: Listing 2 baseline)")
	outdir := flag.String("outdir", "", "write real plotfiles under this directory")
	dist := flag.String("dist", "knapsack", "distribution mapping: roundrobin|knapsack|sfc")
	nprocs := flag.Int("nprocs", 0, "override number of simulated MPI tasks")
	verbose := flag.Bool("v", false, "print the plotfile tree and burst report")
	flag.Parse()

	cfg := inputs.DefaultCastroInputs()
	if *inputsPath != "" {
		var err error
		cfg, err = inputs.LoadCastro(*inputsPath)
		if err != nil {
			return err
		}
	}
	if *nprocs > 0 {
		cfg.NProcs = *nprocs
	}

	opts := sim.DefaultOptions()
	switch *dist {
	case "roundrobin":
		opts.Dist = amr.DistRoundRobin
	case "knapsack":
		opts.Dist = amr.DistKnapsack
	case "sfc":
		opts.Dist = amr.DistSFC
	default:
		return fmt.Errorf("unknown -dist %q", *dist)
	}

	fsCfg := iosim.DefaultConfig()
	if *outdir != "" {
		fsCfg.Backend = iosim.RealDisk
	}
	fs := iosim.New(fsCfg, *outdir)

	s, err := sim.New(cfg, opts, fs)
	if err != nil {
		return err
	}
	fmt.Printf("castro-sedov: %dx%d cells, max_level %d, %d tasks, cfl %.2f, plot_int %d\n",
		cfg.NCell[0], cfg.NCell[1], cfg.MaxLevel, cfg.NProcs, cfg.CFL, cfg.PlotInt)
	if err := s.Run(); err != nil {
		return err
	}

	fmt.Printf("completed: %d steps, t = %.6g, %d plotfiles, finest level %d\n",
		s.Step, s.Time, s.NPlots(), s.FinestLevel())

	recs := s.Records()
	perStep := map[int]int64{}
	perLevel := map[int]int64{}
	for _, r := range recs {
		perStep[r.Step] += r.Bytes
		perLevel[r.Level] += r.Bytes
	}
	fmt.Println("\nbytes per plot step:")
	for _, step := range report.SortedIntKeys(perStep) {
		fmt.Printf("  step %6d  %s\n", step, report.HumanBytes(perStep[step]))
	}
	fmt.Println("bytes per level:")
	for _, l := range report.SortedIntKeys(perLevel) {
		fmt.Printf("  L%d  %s\n", l, report.HumanBytes(perLevel[l]))
	}
	fmt.Printf("total: %s in %d records\n", report.HumanBytes(fs.TotalBytes()), len(recs))

	if *verbose {
		fmt.Println()
		fmt.Println(report.Fig2(fs.Ledger()))
		fmt.Println(report.BurstReport(fs.Ledger()))
		fmt.Println(iosim.Characterize(fs.Ledger()).Render())
	}
	return nil
}
