package main_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const badFixture = "./internal/analysis/vet/testdata/src/bad"

// buildTool compiles the amrio-vet binary into t.TempDir and returns
// its path plus the repo root (the module directory two levels up).
func buildTool(t *testing.T) (tool, root string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool = filepath.Join(t.TempDir(), "amrio-vet")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/amrio-vet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/amrio-vet: %v\n%s", err, out)
	}
	return tool, root
}

// TestBinarySmoke: the built binary completes the vet handshake and
// exits non-zero on the known-bad fixture.
func TestBinarySmoke(t *testing.T) {
	tool, root := buildTool(t)

	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("amrio-vet -V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "amrio-vet version") {
		t.Errorf("-V=full printed %q", out)
	}

	cmd := exec.Command(tool, badFixture)
	cmd.Dir = root
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("amrio-vet %s: err=%v, want exit code 2\n%s", badFixture, err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "time.Now") || !strings.Contains(stdout.String(), "BoxArray") {
		t.Errorf("expected both seeded diagnostics, got:\n%s", stdout.String())
	}
}

// TestVetToolProtocol drives the binary through the real go vet
// -vettool pipeline, the exact shape the CI gate uses.
func TestVetToolProtocol(t *testing.T) {
	tool, root := buildTool(t)

	cmd := exec.Command("go", "vet", "-vettool="+tool, badFixture)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on bad fixture succeeded; want failure\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now") || !strings.Contains(string(out), "BoxArray") {
		t.Errorf("go vet output missing seeded diagnostics:\n%s", out)
	}

	// And a clean package passes through the same pipeline.
	cmd = exec.Command("go", "vet", "-vettool="+tool, "./internal/grid")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package failed: %v\n%s", err, out)
	}
}
