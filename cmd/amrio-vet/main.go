// Command amrio-vet runs the repository's invariant analyzer suite
// (see internal/analysis). It is built for `go vet -vettool=` but also
// runs standalone:
//
//	go build -o /tmp/amrio-vet ./cmd/amrio-vet
//	go vet -vettool=/tmp/amrio-vet ./...   # vet-driven (CI gate)
//	/tmp/amrio-vet ./...                   # standalone
package main

import (
	"os"

	"amrproxyio/internal/analysis/vet"
)

func main() {
	os.Exit(vet.Main(os.Args[1:], os.Stdout, os.Stderr))
}
