// Command macsio is the proxy I/O application with the paper's Table II
// command line. It reproduces the Fig. 3 N-to-N output pattern through the
// filesystem model (or onto real disk with -outdir).
//
// Example (the paper's Listing 1 shape):
//
//	macsio --interface miftmpl --parallel_file_mode MIF 32 \
//	       --num_dumps 21 --part_size 1550000 --avg_num_parts 1 \
//	       --vars_per_part 1 --dataset_growth 1.013075 --nprocs 32
//
// -nodes/-targets enable the per-link topology model; -storage selects
// the storage-tier stack ("gpfs" | "bb" | "bb+gpfs") — with the
// burst-buffer stacks, --compute_time is the gap the asynchronous NVMe
// drain overlaps, and -v's characterization reports per-tier bytes,
// buffer fill, and stall stragglers. -aggregation turns the N-to-N dump
// into a two-phase collective (iosim spec grammar: "all" | "K/node",
// with "+sif" and "+async" options): node peers gather onto aggregator
// ranks, which are the only ranks that open files — -v's
// characterization then shows the reduced fan-in and the gather/open
// split. -faults installs a deterministic
// fault-injection plan (inline JSON or a path; see internal/faults);
// -v then also renders the run's resilience summary. -mitigate enables
// the closed-loop resilience engine ("default"/"on", inline policy JSON,
// or a path; see internal/resilience) — MACSio's dumps are checkpoints
// with a fixed count, so the engine's seam here is target quarantine:
// between dumps it trips circuit breakers on storming targets and routes
// the next dump's writes to failover targets instead of retrying into
// the outage. -v then also prints the mitigation summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/report"
	"amrproxyio/internal/resilience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "macsio:", err)
		os.Exit(1)
	}
}

func run() error {
	// Split our own flags (before "--") from MACSio flags.
	var outdir, storage, aggregation, faultsArg, mitigateArg string
	var verbose bool
	var nodes, targets int
	fl := flag.NewFlagSet("macsio", flag.ContinueOnError)
	fl.StringVar(&outdir, "outdir", "", "write real files under this directory")
	fl.BoolVar(&verbose, "v", false, "print the output layout and burst report")

	args := os.Args[1:]
	var macsioArgs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-outdir", "--outdir":
			if i+1 < len(args) {
				outdir = args[i+1]
				i++
			}
		case "-storage", "--storage":
			if i+1 < len(args) {
				storage = args[i+1]
				i++
			}
		case "-aggregation", "--aggregation":
			if i+1 < len(args) {
				aggregation = args[i+1]
				i++
			}
		case "-faults", "--faults":
			if i+1 < len(args) {
				faultsArg = args[i+1]
				i++
			}
		case "-mitigate", "--mitigate":
			if i+1 < len(args) {
				mitigateArg = args[i+1]
				i++
			}
		case "-nodes", "--nodes":
			if i+1 < len(args) {
				n, err := strconv.Atoi(args[i+1])
				if err != nil {
					return fmt.Errorf("-nodes %q: %w", args[i+1], err)
				}
				nodes = n
				i++
			}
		case "-targets", "--targets":
			if i+1 < len(args) {
				n, err := strconv.Atoi(args[i+1])
				if err != nil {
					return fmt.Errorf("-targets %q: %w", args[i+1], err)
				}
				targets = n
				i++
			}
		case "-v":
			verbose = true
		default:
			macsioArgs = append(macsioArgs, args[i])
		}
	}
	_ = fl

	cfg, err := macsio.ParseArgs(macsioArgs)
	if err != nil {
		return err
	}

	fsCfg := iosim.DefaultConfig()
	if outdir != "" {
		fsCfg.Backend = iosim.RealDisk
	}
	// -nodes N packs the ranks onto N Summit-like nodes and switches the
	// burst model to per-link contention (NIC caps + NSD fan-in);
	// -targets overrides the Alpine NSD server count.
	if targets > 0 && nodes <= 0 {
		return fmt.Errorf("-targets requires -nodes (the topology model needs a rank placement)")
	}
	if nodes > 0 {
		topo := iosim.TopologyForCase(nodes, cfg.NProcs)
		if targets > 0 {
			topo.Targets = targets
		}
		fsCfg.Topology = topo
	}
	// -storage selects the tier stack ("gpfs" | "bb" | "bb+gpfs"): the
	// burst-buffer models partition each node's Summit NVMe across its
	// ranks and drain asynchronously between dumps (--compute_time makes
	// the drain-compute overlap visible). Without -nodes every rank
	// shares one node's partition.
	if storage != "" {
		name, err := iosim.ParseStorage(storage)
		if err != nil {
			return err
		}
		fsCfg.Storage = name
		bbNodes := nodes
		if bbNodes <= 0 {
			bbNodes = 1
		}
		fsCfg.BurstBuffer = iosim.DefaultBurstBuffer(bbNodes)
	}
	// -aggregation prices the dumps as a two-phase collective; unknown
	// specs and degenerate aggregator counts are rejected here, before
	// any dump runs.
	if aggregation != "" {
		spec, err := iosim.ParseAggregation(aggregation)
		if err != nil {
			return err
		}
		fsCfg.Aggregation = spec
	}
	// -faults schedules deterministic fault injection against simulated
	// time; malformed plans and unknown fault kinds are rejected here,
	// before any dump runs.
	plan, err := faults.Load(faultsArg)
	if err != nil {
		return err
	}
	if inj := plan.Injector(fsCfg.Topology); inj != nil {
		fsCfg.Faults = inj
	}
	// -mitigate turns the injected faults from a passive stress into a
	// closed loop: the policy is validated here (unknown fields exit
	// non-zero before any dump runs), and the engine attaches only when
	// there is an injector to mitigate against.
	policy, err := resilience.Load(mitigateArg)
	if err != nil {
		return err
	}
	fs := iosim.New(fsCfg, outdir)
	eng := resilience.ForFileSystem(policy, fs, cfg.NProcs)

	fmt.Printf("macsio: %s\n", cfg.CommandLine())
	recs, err := macsio.RunMitigated(fs, cfg, eng)
	if err != nil {
		return err
	}
	per := macsio.BytesPerStep(recs)
	fmt.Println("bytes per dump step:")
	for _, step := range report.SortedIntKeys(per) {
		fmt.Printf("  dump %3d  %s\n", step, report.HumanBytes(per[step]))
	}
	fmt.Printf("total: %s across %d dump records\n",
		report.HumanBytes(macsio.TotalBytes(recs)), len(recs))

	if verbose {
		fmt.Println()
		fmt.Println(report.Fig3(fs.Ledger()))
		fmt.Println(report.BurstReport(fs.Ledger()))
		if nodes > 0 {
			fmt.Println(report.TopologyReport(fs.Ledger()))
		}
		fmt.Println(iosim.Characterize(fs.Ledger()).Render())
		if plan != nil {
			sum := report.ResilienceSummary{
				Name:       "macsio",
				Resilience: faults.Analyze(plan, fs.Ledger(), fs.FaultEvents()),
			}
			fmt.Printf("resilience under injected faults:\n%s",
				report.ResilienceReport([]report.ResilienceSummary{sum}))
		}
		if eng != nil {
			out := resilience.Evaluate("macsio", plan, fs.Ledger(), fs.FaultEvents(), eng.Stats())
			fmt.Printf("mitigation summary:\n%s",
				report.MitigationTable([]report.MitigationSummary{{Name: "macsio", Outcome: out}}))
		}
	}
	return nil
}
