// Command amrio-report regenerates every table and figure in the paper's
// evaluation section. With -results it reads saved campaign JSONs; without
// it, it executes the scaled pivot cases on the spot (about a minute) and
// renders everything end to end.
//
// Usage:
//
//	amrio-report [-results results/] [-csv] [-exhibit fig10]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "amrio-report:", err)
		os.Exit(1)
	}
}

func run() error {
	resultsDir := flag.String("results", "", "directory of saved campaign result JSONs")
	csv := flag.Bool("csv", false, "emit figure data as CSV instead of ASCII plots")
	exhibit := flag.String("exhibit", "", "render only the named exhibit (table1..3, fig2..11, listing1)")
	div := flag.Int("scale", 8, "scale divisor for on-the-fly runs")
	flag.Parse()

	want := func(name string) bool {
		return *exhibit == "" || strings.EqualFold(*exhibit, name)
	}
	emit := func(p *report.Plot) {
		if *csv {
			fmt.Println(p.CSV())
		} else {
			fmt.Println(p.Render())
		}
	}

	// Load or generate the result set.
	var results []campaign.Result
	if *resultsDir != "" {
		paths, err := filepath.Glob(filepath.Join(*resultsDir, "*.json"))
		if err != nil {
			return err
		}
		for _, p := range paths {
			r, err := campaign.LoadResult(p)
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
			results = append(results, r)
		}
		if len(results) == 0 {
			return fmt.Errorf("no result JSONs in %s", *resultsDir)
		}
	}

	runCase := func(c campaign.Case) (campaign.Result, error) {
		for _, r := range results {
			if r.Case.Name == c.Name {
				return r, nil
			}
		}
		fs := iosim.New(iosim.DefaultConfig(), "")
		return campaign.Run(c, fs)
	}

	if want("table1") {
		fmt.Println(report.TableI())
	}
	if want("table2") {
		fmt.Println(report.TableII())
	}

	// Fig. 2 / Fig. 3: structural exhibits from fresh small runs.
	if want("fig2") {
		fs := iosim.New(iosim.DefaultConfig(), "")
		c := campaign.Case{Name: "fig2", NCell: 32, MaxLevel: 2, MaxStep: 4, PlotInt: 4,
			CFL: 0.5, NProcs: 4, Engine: campaign.EngineHydro}
		if _, err := campaign.Run(c, fs); err != nil {
			return err
		}
		fmt.Println(report.Fig2(fs.Ledger()))
	}
	if want("fig3") {
		fs := iosim.New(iosim.DefaultConfig(), "")
		mcfg := macsio.DefaultConfig()
		mcfg.NProcs = 4
		mcfg.NumDumps = 3
		if _, err := macsio.Run(fs, mcfg); err != nil {
			return err
		}
		fmt.Println(report.Fig3(fs.Ledger()))
	}

	// Pivot runs used by several figures.
	var pivotResults []campaign.Result
	var pivotTranslations []core.Translation
	needPivot := want("fig6") || want("fig7") || want("fig9") || want("fig10") || want("listing1")
	if needPivot {
		for _, v := range []struct {
			cfl float64
			ml  int
		}{{0.3, 2}, {0.3, 4}, {0.6, 2}, {0.6, 4}} {
			c := campaign.Case4Variant(v.cfl, v.ml).Scaled(*div)
			res, err := runCase(c)
			if err != nil {
				return err
			}
			tr, err := core.Translate(res.Case.Inputs(), res.Records, core.DefaultTranslateOptions())
			if err != nil {
				return err
			}
			pivotResults = append(pivotResults, res)
			pivotTranslations = append(pivotTranslations, tr)
		}
	}

	if want("table3") {
		set := results
		if len(set) == 0 {
			set = pivotResults
		}
		fmt.Println(report.TableIII(set))
	}
	if want("fig5") {
		set := results
		if len(set) == 0 {
			// A small sweep across sizes and level counts.
			for _, c := range []campaign.Case{
				{Name: "s32", NCell: 32, MaxLevel: 2, MaxStep: 60, PlotInt: 4, CFL: 0.5, NProcs: 2, Engine: campaign.EngineAuto},
				{Name: "s64", NCell: 64, MaxLevel: 2, MaxStep: 60, PlotInt: 4, CFL: 0.5, NProcs: 4, Engine: campaign.EngineAuto},
				{Name: "s64l3", NCell: 64, MaxLevel: 3, MaxStep: 60, PlotInt: 4, CFL: 0.5, NProcs: 4, Engine: campaign.EngineAuto},
				{Name: "s1024", NCell: 1024, MaxLevel: 2, MaxStep: 60, PlotInt: 4, CFL: 0.5, NProcs: 16, Engine: campaign.EngineAuto},
			} {
				res, err := runCase(c)
				if err != nil {
					return err
				}
				set = append(set, res)
			}
		}
		emit(report.Fig5(set))
	}
	if want("fig6") {
		emit(report.Fig6(pivotResults))
	}
	if want("fig7") {
		emit(report.Fig7(pivotResults[3])) // cfl 0.6, maxl 4: richest hierarchy
	}
	if want("fig8") {
		res, err := runCase(campaign.Case27().Scaled(*div / 2))
		if err != nil {
			return err
		}
		for level := 0; level <= 1; level++ {
			p, imbalance := report.Fig8(res, level)
			emit(p)
			fmt.Printf("level %d per-task imbalance (max/mean): %.2f\n\n", level, imbalance)
		}
	}
	if want("fig9") {
		tr := pivotTranslations[1] // cfl 0.3 maxl 4 — any pivot works
		_, perStep := core.PerStepBytes(pivotResults[1].Records)
		emit(report.Fig9(perStep, tr.Trace, tr.Kernel.Base))
	}
	if want("fig10") {
		p, mapes := report.Fig10(pivotResults, pivotTranslations)
		emit(p)
		for i, m := range mapes {
			fmt.Printf("%s model MAPE: %.2f%%\n", pivotResults[i].Case.Name, m)
		}
		fmt.Println()
	}
	if want("fig11") {
		res, err := runCase(campaign.LargeCase())
		if err != nil {
			return err
		}
		tr, err := core.Translate(res.Case.Inputs(), res.Records, core.DefaultTranslateOptions())
		if err != nil {
			return err
		}
		p, mape := report.Fig11(res, tr.Kernel)
		emit(p)
		fmt.Printf("large-case kernel MAPE: %.2f%%\n\n", mape)
	}
	if want("listing1") {
		fmt.Println(report.Listing1(pivotTranslations[3], pivotResults[3].Case.NProcs))
	}
	return nil
}
