// Command amrio-model applies the paper's analytical model: it calibrates
// the Eq. 3 part_size factor and the dataset_growth kernel against a
// measured run (a result JSON from amrio-campaign, or a fresh quick run of
// the pivot case) and emits the translated MACSio command line (Listing 1)
// plus the Fig. 9 calibration convergence.
//
// Usage:
//
//	amrio-model [-result results/case4.json] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "amrio-model:", err)
		os.Exit(1)
	}
}

func run() error {
	resultPath := flag.String("result", "", "measured run JSON (default: run a quick case4 now)")
	csv := flag.Bool("csv", false, "emit the Fig. 9 series as CSV")
	flag.Parse()

	var res campaign.Result
	if *resultPath != "" {
		var err error
		res, err = campaign.LoadResult(*resultPath)
		if err != nil {
			return err
		}
	} else {
		fmt.Println("no -result given; running a scaled case4 pivot now...")
		fs := iosim.New(iosim.DefaultConfig(), "")
		var err error
		res, err = campaign.Run(campaign.Case4().Scaled(8), fs)
		if err != nil {
			return err
		}
	}

	cfg := res.Case.Inputs()
	tr, err := core.Translate(cfg, res.Records, core.DefaultTranslateOptions())
	if err != nil {
		return err
	}

	fmt.Printf("measured run: %s (%s engine, %d plot events, %s total)\n",
		res.Case.Name, res.Engine, res.NPlots, report.HumanBytes(res.TotalBytes()))
	fmt.Printf("Eq. 3 fit: f = %.3f -> part_size = %d bytes\n", tr.F, tr.MACSio.PartSize)
	fmt.Printf("calibrated dataset_growth = %.6f (MAPE %.2f%%, Pearson %.4f)\n",
		tr.Kernel.Growth, tr.MAPE, tr.Pearson)
	fmt.Printf("growth guess from cfl/levels table: %.4f\n",
		core.GrowthGuess(cfg.CFL, cfg.MaxLevel))
	fmt.Println()
	fmt.Println(report.Listing1(tr, cfg.NProcs))

	_, perStep := core.PerStepBytes(res.Records)
	fig9 := report.Fig9(perStep, tr.Trace, tr.Kernel.Base)
	if *csv {
		fmt.Println(fig9.CSV())
	} else {
		fmt.Println(fig9.Render())
	}
	return nil
}
