// Command amrio-campaign executes the paper's Table III parameter study
// and persists each run's output ledger to JSON for the model and report
// tools.
//
// Usage:
//
//	amrio-campaign [-quick] [-filter case4] [-outdir results/] [-parallel N]
//
// -quick (default) runs the campaign scaled for minutes-scale execution;
// -quick=false runs paper-scale cases (hours; Summit-scale cases still use
// the metadata-only surrogate and remain fast). Cases are independent —
// each owns a private simulated filesystem — so the sweep runs on a
// worker pool: -parallel N caps the workers (default: all cores; 1
// reproduces the serial executor). Ledgers and results are identical at
// any parallelism; only wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "amrio-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", true, "run the scaled-down campaign")
	filter := flag.String("filter", "", "only run cases whose name contains this substring")
	outdir := flag.String("outdir", "", "save per-case result JSONs here")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = all cores, 1 = serial)")
	flag.Parse()

	all := campaign.PaperCampaign()
	if *quick {
		all = campaign.QuickCampaign()
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	var cases []campaign.Case
	for _, c := range all {
		if *filter == "" || strings.Contains(c.Name, *filter) {
			cases = append(cases, c)
		}
	}

	results, err := campaign.RunAll(cases, *parallel, func(campaign.Case) *iosim.FileSystem {
		return iosim.New(iosim.DefaultConfig(), "")
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		c := cases[i]
		fmt.Printf("%-18s %-9s %9s in %8v (%d plots)\n",
			c.Name, res.Engine, report.HumanBytes(res.TotalBytes()), res.Wall.Round(1e6), res.NPlots)
		if *outdir != "" {
			if err := res.Save(filepath.Join(*outdir, c.Name+".json")); err != nil {
				return err
			}
		}
	}
	fmt.Println()
	fmt.Println(report.TableIII(results))
	return nil
}
