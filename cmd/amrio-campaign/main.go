// Command amrio-campaign executes the paper's Table III parameter study
// and persists each run's output ledger to JSON for the model and report
// tools.
//
// Usage:
//
//	amrio-campaign [-quick] [-filter case4] [-outdir results/]
//
// -quick (default) runs the campaign scaled for minutes-scale execution;
// -quick=false runs paper-scale cases (hours; Summit-scale cases still use
// the metadata-only surrogate and remain fast).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "amrio-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", true, "run the scaled-down campaign")
	filter := flag.String("filter", "", "only run cases whose name contains this substring")
	outdir := flag.String("outdir", "", "save per-case result JSONs here")
	flag.Parse()

	cases := campaign.PaperCampaign()
	if *quick {
		cases = campaign.QuickCampaign()
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	var results []campaign.Result
	for _, c := range cases {
		if *filter != "" && !strings.Contains(c.Name, *filter) {
			continue
		}
		fsCfg := iosim.DefaultConfig()
		fs := iosim.New(fsCfg, "")
		res, err := campaign.Run(c, fs)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		fmt.Printf("%-18s %-9s %9s in %8v (%d plots)\n",
			c.Name, res.Engine, report.HumanBytes(res.TotalBytes()), res.Wall.Round(1e6), res.NPlots)
		if *outdir != "" {
			if err := res.Save(filepath.Join(*outdir, c.Name+".json")); err != nil {
				return err
			}
		}
		results = append(results, res)
	}
	fmt.Println()
	fmt.Println(report.TableIII(results))
	return nil
}
