// Command amrio-campaign executes the paper's Table III parameter study
// and persists each run's output ledger to JSON for the model and report
// tools.
//
// Usage:
//
//	amrio-campaign [-quick] [-filter case4] [-outdir results/] [-parallel N]
//	               [-topology] [-dist roundrobin,knapsack,sfc] [-remap]
//	               [-storage gpfs,bb,bb+gpfs] [-bbcap bytes]
//	               [-aggregation direct,2/node,1/node+sif+async]
//	               [-faults plan.json | -faults '{"events":[...]}']
//	               [-mitigate default | policy.json | '{"quarantine":true}']
//
// -quick (default) runs the campaign scaled for minutes-scale execution;
// -quick=false runs paper-scale cases (hours; Summit-scale cases still use
// the metadata-only surrogate and remain fast). Cases are independent —
// each owns a private simulated filesystem — so the sweep runs on a
// worker pool: -parallel N caps the workers (default: all cores; 1
// reproduces the serial executor). Ledgers and results are identical at
// any parallelism; only wall-clock changes.
//
// -topology switches the filesystem model from one aggregate bandwidth
// pool to the per-link contention model: each case's ranks are packed
// onto its Summit node count, per-node NIC caps and Alpine NSD fan-in
// apply, and the per-case output gains a link-skew summary (plus a full
// per-node report when a -filter narrows the sweep to a few cases).
//
// -dist expands every selected case into the distribution-mapping
// cross-product (one run per named strategy) and, after the sweep,
// prints a per-base-case DistReport comparing burst skew, stragglers,
// and per-target fan-in across strategies. -remap additionally turns on
// the inter-burst layout reorganization (amr.RemapToTargets): before
// every dump the rank→storage-target placement is rebalanced to the
// hierarchy's per-rank load (effective with -topology, which models the
// targets being rebalanced).
//
// -storage expands every selected case into the storage-tier
// cross-product ("gpfs" single-tier, "bb" node-local burst buffer,
// "bb+gpfs" tiered) and prints a per-base-case StorageReport comparing
// burst walls, per-tier byte splits, buffer occupancy, drain tails, and
// stall stragglers. -bbcap overrides the per-node burst-buffer capacity
// in bytes (default: Summit's 1.6 TB NVMe) — shrink it to watch bursts
// fill the buffer and stall at the drain rate. The two sweeps compose:
// -dist a,b -storage x,y runs the full strategy × tier matrix (the
// storage comparison groups per dist-sweep member; the dist table is
// printed only for pure -dist sweeps).
//
// -aggregation expands every selected case into the two-phase
// aggregation cross-product (iosim.AggregationSpec grammar:
// "all" | "K/node", with "+sif" and "+async" options; the reserved word
// "direct" is the no-aggregation baseline) and prints a per-base-case
// AggregationReport comparing fan-in (ranks → writers), the
// gather/open/write duration split, and the wall-time crossover across
// layouts. The sweep composes with -dist and -storage (the aggregation
// comparison groups per storage-sweep member; the storage table is
// printed only for aggregation-free sweeps). Unknown specs are rejected
// before any case runs.
//
// -faults installs a deterministic fault-injection plan (inline JSON or
// a path to a JSON file; see internal/faults) on every selected case:
// storage-target outages, per-node NIC degradation, burst-buffer
// partition loss, and MTBF-driven rank interrupts. After the sweep the
// per-case recovery model is rendered as a ResilienceReport (lost work,
// restart reads, retries, failovers, forward-progress rate). Unknown
// fault kinds and malformed plans are rejected before any case runs.
// Runnable example plans live in examples/faultplans/.
//
// -mitigate expands every selected case into an unmitigated/mitigated
// pair under the closed-loop resilience policy engine
// (internal/resilience): adaptive Young/Daly checkpoint cadence, target
// quarantine with immediate failover, and degraded-mode output under
// fault pressure. "default" (or "on") enables all three policies;
// inline JSON or a policy file tunes them. After the sweep the
// MitigationReport renders the side-by-side outcome with per-pair
// forward-progress deltas. Meaningful with -faults (without a fault
// plan there is nothing to mitigate and the pair is identical); unknown
// policy fields are rejected before any case runs.
//
// -serve addr switches from the one-shot sweep to the campaign service
// (internal/serve): an HTTP server on addr accepting JSON case batches
// on POST /run and streaming per-case report JSON back as NDJSON as
// each case completes, with /healthz and /statz endpoints. Cases run
// through the memoizing executor — repeated configurations are served
// from an LRU cache keyed by canonical case fingerprint — on the usual
// worker pool (-parallel), optionally bounded per case (-case-timeout)
// and against the per-link model (-topology). SIGTERM/SIGINT drain
// in-flight batches before exit. The sweep-shaping flags (-quick,
// -dist, -storage, ...) do not apply in serve mode; clients submit
// fully-formed cases.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
	"amrproxyio/internal/resilience"
	"amrproxyio/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "amrio-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", true, "run the scaled-down campaign")
	filter := flag.String("filter", "", "only run cases whose name contains this substring")
	outdir := flag.String("outdir", "", "save per-case result JSONs here")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = all cores, 1 = serial)")
	topology := flag.Bool("topology", false,
		"model per-link contention (node NIC caps + NSD fan-in) instead of one aggregate pool")
	dist := flag.String("dist", "",
		"comma-separated distribution-mapping strategies to sweep (roundrobin,knapsack,sfc); expands every case")
	remap := flag.Bool("remap", false,
		"reorganize the rank->target layout between bursts (amr.RemapToTargets; effective with -topology)")
	storage := flag.String("storage", "",
		"comma-separated storage-tier stacks to sweep (gpfs,bb,bb+gpfs); expands every case")
	bbcap := flag.Float64("bbcap", 0,
		"per-node burst-buffer capacity in bytes for bb/bb+gpfs sweeps (0 = Summit's 1.6e12)")
	aggregation := flag.String("aggregation", "",
		"comma-separated aggregation specs to sweep (direct,all,K/node with +sif/+async options); expands every case")
	faultsArg := flag.String("faults", "",
		"fault-injection plan for every case: inline JSON or a path to a JSON file (see internal/faults)")
	mitigateArg := flag.String("mitigate", "",
		"mitigation policy sweep: 'default' enables all policies, or inline JSON / a path to a JSON policy file (see internal/resilience)")
	serveAddr := flag.String("serve", "",
		"serve mode: listen on this address (e.g. :8080) for JSON case batches instead of running a sweep")
	caseTimeout := flag.Duration("case-timeout", 0,
		"serve mode: per-case wall-clock bound (0 = unbounded)")
	cacheSize := flag.Int("cache", 0,
		"serve mode: memoization LRU capacity (0 = default)")
	flag.Parse()

	if *serveAddr != "" {
		return runServe(*serveAddr, serve.Options{
			Parallel:    *parallel,
			CaseTimeout: *caseTimeout,
			CacheSize:   *cacheSize,
			Topology:    *topology,
		})
	}

	// An explicit -bbcap must be positive: letting 0 or a negative
	// capacity flow into the model would silently select the Summit
	// default (or a degenerate buffer) instead of what was asked for.
	var bbcapSet bool
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "bbcap" {
			bbcapSet = true
		}
	})
	if bbcapSet && *bbcap <= 0 {
		return fmt.Errorf("-bbcap must be positive, got %g", *bbcap)
	}
	plan, err := faults.Load(*faultsArg)
	if err != nil {
		return err
	}
	policy, err := resilience.Load(*mitigateArg)
	if err != nil {
		return err
	}

	all := campaign.PaperCampaign()
	if *quick {
		all = campaign.QuickCampaign()
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	var cases []campaign.Case
	for _, c := range all {
		if *filter == "" || strings.Contains(c.Name, *filter) {
			cases = append(cases, c)
		}
	}

	var dists []campaign.Dist
	baseCases := cases
	if *dist != "" {
		for _, name := range strings.Split(*dist, ",") {
			d, err := campaign.ParseDist(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			dists = append(dists, d)
		}
		cases = campaign.SweepDist(cases, dists...)
	}
	var storages []campaign.Storage
	storageBases := cases // storage grouping nests inside the dist sweep
	if *storage != "" {
		for _, name := range strings.Split(*storage, ",") {
			s, err := campaign.ParseStorage(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			storages = append(storages, s)
		}
		cases = campaign.SweepStorage(cases, storages...)
	}
	var aggVariants []campaign.AggregationVariant
	aggBases := cases // aggregation grouping nests inside the storage sweep
	if *aggregation != "" {
		aggVariants, err = campaign.ParseAggregationVariants(*aggregation)
		if err != nil {
			return err
		}
		cases = campaign.SweepAggregation(cases, aggVariants...)
	}
	if *remap {
		for i := range cases {
			cases[i].Remap = true
		}
	}
	if plan != nil {
		for i := range cases {
			cases[i].Faults = plan
		}
	}
	// The mitigation sweep nests innermost: each (dist × storage) member
	// becomes an unmitigated/mitigated pair under the same fault plan.
	mitBases := cases
	if policy != nil {
		cases = campaign.SweepMitigate(cases,
			campaign.MitigateVariant{Name: "nomitigate"},
			campaign.MitigateVariant{Name: "mitigate", Policy: policy})
	}
	for _, c := range cases {
		if err := c.Validate(); err != nil {
			return err
		}
	}

	// Ledgers are retained per case while its summary is computed, then
	// freed; the sweeps keep only the compact summary rows.
	keepLedgers := *topology || len(dists) > 0 || len(storages) > 0 ||
		len(aggVariants) > 0 || plan != nil || policy != nil
	var mu sync.Mutex
	ledgers := map[string]*iosim.FileSystem{}
	results, err := campaign.RunAll(cases, *parallel, func(c campaign.Case) *iosim.FileSystem {
		cfg := c.FSConfig(*topology)
		if *bbcap > 0 {
			cfg.BurstBuffer.NodeCapacity = *bbcap
		}
		fs := iosim.New(cfg, "")
		if keepLedgers {
			mu.Lock()
			ledgers[c.Name] = fs
			mu.Unlock()
		}
		return fs
	})
	if err != nil {
		return err
	}
	var linkReports []string
	distSums := map[string]report.DistSummary{}
	storageSums := map[string]report.StorageSummary{}
	aggSums := map[string]report.AggregationSummary{}
	var resilSums []report.ResilienceSummary
	mitSums := map[string]report.MitigationSummary{}
	for i, res := range results {
		c := cases[i]
		line := fmt.Sprintf("%-18s %-9s %9s in %8v (%d plots)",
			c.Name, res.Engine, report.HumanBytes(res.TotalBytes()), res.Wall.Round(1e6), res.NPlots)
		if fs := ledgers[c.Name]; fs != nil {
			ledger := fs.Ledger()
			if *topology {
				line += "  [" + report.LinkSummary(ledger) + "]"
				// A narrowed sweep gets the full per-node decomposition too.
				if len(cases) <= 4 {
					linkReports = append(linkReports,
						fmt.Sprintf("%s:\n%s", c.Name, report.TopologyReport(ledger)))
				}
			}
			// Only for pure -dist sweeps: a composed -storage sweep
			// renames the cases, so the dist table below never renders
			// and the summaries would be dead work.
			if len(dists) > 0 && len(storages) == 0 {
				distSums[c.Name] = report.SummarizeDist(string(c.Dist), ledger)
			}
			// Like the dist table, the flat storage table only renders
			// for aggregation-free sweeps: a composed -aggregation sweep
			// renames the cases again.
			if len(storages) > 0 && len(aggVariants) == 0 {
				storageSums[c.Name] = report.SummarizeStorage(string(c.Storage), ledger)
			}
			if len(aggVariants) > 0 {
				aggSums[c.Name] = report.SummarizeAggregation(c.Name, ledger)
			}
			if plan != nil {
				resilSums = append(resilSums, report.ResilienceSummary{
					Name:       c.Name,
					Resilience: faults.Analyze(plan, ledger, fs.FaultEvents()),
				})
			}
			if policy != nil {
				mitSums[c.Name] = report.MitigationSummary{
					Name:    c.Name,
					Outcome: resilience.Evaluate(c.Name, c.Faults, ledger, fs.FaultEvents(), res.Mitigation),
				}
			}
			// Each case's ledger is only needed for its own summaries;
			// free it now so a large sweep doesn't hold every case's
			// write records until process exit.
			fs.Reset()
			delete(ledgers, c.Name)
		}
		fmt.Println(line)
		if *outdir != "" {
			if err := res.Save(filepath.Join(*outdir, c.Name+".json")); err != nil {
				return err
			}
		}
	}
	for _, r := range linkReports {
		fmt.Println()
		fmt.Print(r)
	}
	// The distribution-mapping comparison: one DistReport per base case,
	// strategies side by side with deltas against the first. (With a
	// composed -storage sweep the dist members were expanded further, so
	// the flat dist table is only rendered for pure -dist sweeps.)
	if len(dists) > 0 && len(storages) == 0 {
		for _, base := range baseCases {
			var sums []report.DistSummary
			for _, d := range dists {
				if s, ok := distSums[campaign.SweepName(base.Name, d)]; ok {
					sums = append(sums, s)
				}
			}
			if len(sums) > 0 {
				fmt.Println()
				fmt.Printf("%s distribution-mapping comparison:\n%s", base.Name, report.DistReport(sums))
			}
		}
	}
	// The aggregation comparison: one AggregationReport per (possibly
	// dist/storage-expanded) base case, layouts side by side with fan-in
	// and wall deltas against the first — the crossover table.
	if len(aggVariants) > 0 {
		for _, base := range aggBases {
			var sums []report.AggregationSummary
			for _, v := range aggVariants {
				if s, ok := aggSums[campaign.SweepAggregationName(base.Name, v.Name)]; ok {
					s.Name = v.Name
					sums = append(sums, s)
				}
			}
			if len(sums) > 0 {
				fmt.Println()
				fmt.Printf("%s aggregation comparison:\n%s", base.Name, report.AggregationReport(sums))
			}
		}
	}
	// The storage-tier comparison: one StorageReport per (possibly
	// dist-expanded) base case, stacks side by side with wall deltas
	// against the first.
	if len(storages) > 0 && len(aggVariants) == 0 {
		for _, base := range storageBases {
			var sums []report.StorageSummary
			for _, s := range storages {
				if sum, ok := storageSums[campaign.SweepStorageName(base.Name, s)]; ok {
					sums = append(sums, sum)
				}
			}
			if len(sums) > 0 {
				fmt.Println()
				fmt.Printf("%s storage-tier comparison:\n%s", base.Name, report.StorageReport(sums))
			}
		}
	}
	// The recovery-cost comparison: what the injected plan cost each
	// case in lost work, restart reads, and degraded forward progress.
	if len(resilSums) > 0 {
		fmt.Println()
		fmt.Printf("resilience under injected faults:\n%s", report.ResilienceReport(resilSums))
	}
	// The mitigation comparison: unmitigated vs. mitigated per base
	// case, with the forward-progress delta line the CI gate checks.
	if policy != nil {
		var pairs []report.MitigationPair
		for _, base := range mitBases {
			un, okU := mitSums[campaign.SweepMitigateName(base.Name, "nomitigate")]
			mit, okM := mitSums[campaign.SweepMitigateName(base.Name, "mitigate")]
			if okU && okM {
				pairs = append(pairs, report.MitigationPair{Base: base.Name, Unmitigated: un, Mitigated: mit})
			}
		}
		if len(pairs) > 0 {
			fmt.Println()
			fmt.Printf("mitigation comparison:\n%s", report.MitigationReport(pairs))
		}
	}
	fmt.Println()
	fmt.Println(report.TableIII(results))
	return nil
}

// runServe runs the campaign service until SIGTERM/SIGINT, then drains:
// the HTTP server stops accepting new batches and in-flight batches
// finish streaming (bounded by a shutdown deadline) before the process
// exits.
func runServe(addr string, opts serve.Options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := serve.New(opts)
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "amrio-campaign: serving on %s\n", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting on the drain
	fmt.Fprintln(os.Stderr, "amrio-campaign: draining in-flight batches")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "amrio-campaign: drained (%d cases served, %.0f%% cache hits)\n",
		st.CasesCompleted, 100*st.HitRate)
	return nil
}
