// Package amrproxyio reproduces "Modeling pre-Exascale AMR Parallel I/O
// Workloads via Proxy Applications" (Godoy, Delozier, Watson — IPDPSW
// 2022, arXiv:2206.00108) as a self-contained Go library.
//
// The repository builds every substrate the paper depends on — a
// block-structured AMR hydrodynamics code standing in for AMReX/Castro, a
// simulated MPI runtime, a parallel-filesystem model standing in for
// Summit's GPFS, the AMReX plotfile format, and a port of the MACSio proxy
// I/O application — plus the paper's contribution: the analytical model
// translating Castro inputs into MACSio parameters (Eq. 3 and the
// calibrated dataset_growth kernel).
//
// Scaling architecture: every neighbor-search hot path (ghost exchange,
// fill-patch, average-down, reflux, hierarchy swap) runs on two shared
// pieces of spatial metadata rather than all-pairs box scans. A
// grid.BoxIndex — a bucketed spatial hash attached lazily to each
// amr.BoxArray — answers box/point intersection queries in ~O(1), and a
// communication-plan cache keyed on BoxArray content fingerprints stores
// the (src, dst, region) copy schedules so a plan is computed once per
// grid generation and replayed every timestep until a regrid changes the
// boxes (the same design as AMReX's hashed BoxArray lookup plus its
// FillBoundary/copy comm-metadata caches). This is what lets simulated
// campaigns scale to thousands-of-boxes Summit-class decompositions with
// per-step cost linear, not quadratic, in box count.
//
// The I/O pipeline is parallel end to end, mirroring the workload it
// models. The iosim ledger is sharded by rank — each simulated rank
// appends to a private segment and clock with no shared lock, and burst
// contention is an atomic bandwidth snapshot taken at BeginBurst — so
// write throughput scales with rank goroutines. The plotfile encoders
// are allocation-frugal (one exact-size buffer per Cell_D file, strconv
// builders for ASCII metadata, byte-identical to the original encoders
// by pinned equivalence tests), the mpisim mailbox buckets pending
// messages by (src, tag) for O(1) receive matching, and campaign.RunAll
// executes independent sweep cases on a worker pool with ledgers
// identical to the serial loop.
//
// Contention is distribution-mapping-aware: an iosim.Topology places
// ranks on compute nodes (per-node NIC caps) and fans their files into
// GPFS NSD-style storage targets, so BeginBurst snapshots bandwidth per
// (rank, target) link rather than one aggregate pool — packed writers
// contend, spread writers don't. The cached communication plans extend
// to per-rank-pair traffic volumes (amr.FillBoundaryTraffic), letting
// mesh exchange and checkpoint/plot bursts share one contention model;
// the zero Topology keeps the historical aggregate model byte-identical.
//
// Storage is multi-tier: all pricing goes through iosim's pluggable
// StorageModel interface, selectable per campaign case ("gpfs" | "bb" |
// "bb+gpfs"). The burst-buffer models give each compute node a Summit
// NVMe partition that absorbs bursts at local speed and drains
// asynchronously to GPFS between them — filling mid-burst stalls a
// writer to the drain rate — so the campaign can sweep the same
// workload across backends and compare per-tier bytes, buffer
// occupancy, drain-compute overlap, and stall stragglers
// (report.StorageReport, amrio-campaign -storage).
//
// Layout:
//
//	internal/grid      index-space geometry (boxes, Morton codes,
//	                   BoxIndex spatial hash)
//	internal/mpisim    simulated MPI (SPMD ranks, collectives)
//	internal/iosim     parallel filesystem model + write ledger
//	internal/inputs    AMReX inputs-file parser, Castro configuration
//	internal/stats     OLS, golden-section minimization, error metrics
//	internal/amr       BoxArray, DistributionMapping, MultiFab, tagging,
//	                   Berger-Rigoutsos clustering, fill-patch
//	internal/hydro     2D Euler solver (MUSCL-Hancock + HLLC)
//	internal/sedov     analytic Sedov-Taylor blast relations
//	internal/sim       the Castro-like AMR driver
//	internal/surrogate Summit-scale workload generator (analytic front)
//	internal/plotfile  AMReX plotfile N-to-N writer/reader
//	internal/macsio    MACSio proxy port (miftmpl JSON, MIF/SIF)
//	internal/core      the paper's model: Eq. 1-3, Listing 1, calibration
//	internal/campaign  the Table III 47-run study
//	internal/report    table/figure renderers
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section; EXPERIMENTS.md records paper-vs-measured
// for each. ARCHITECTURE.md maps the package graph and the load-bearing
// designs. Start with examples/quickstart.
package amrproxyio
